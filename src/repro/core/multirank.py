"""The multi-rank discrete-event job engine.

The analytic job path (:mod:`repro.core.job`) simulates rank 0 in full
detail and charges the other N-1 ranks' shared-resource effects in closed
form — fast, but structurally unable to express contention scenarios:
NFS queueing skew, straggler nodes, per-node OS jitter, cold/warm cache
mixes.  This engine instantiates a real :class:`Process` +
:class:`ExecutionContext` per simulated rank, interleaves their
startup/import/visit phases on a shared virtual clock
(least-virtual-time-first, :mod:`repro.machine.scheduler`), and routes
every DLL read through the shared NFS server's timed FIFO queue
(:meth:`NFSServer.request_at`) — so queueing delay and inter-rank skew
*emerge* from the model.

Homogeneous warm jobs reproduce the analytic rank-0 numbers (the golden
regression tests pin this), so the analytic path remains the validated
fast mode; this engine is the scenario mode.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator

from repro.core.builds import BuildImage, BuildMode, build_benchmark
from repro.core.config import PynamicConfig
from repro.core.driver import DriverReport, PynamicDriver
from repro.core.generator import generate
from repro.core.job import JobReport
from repro.core.specs import BenchmarkSpec
from repro.elf.symbols import HashStyle
from repro.errors import ConfigError, DriverError
from repro.fs.files import FileImage
from repro.linker.dynamic import DynamicLinker
from repro.machine.cluster import Cluster
from repro.machine.context import ExecutionContext
from repro.machine.node import Node
from repro.machine.osprofile import OsProfile, linux_chaos
from repro.machine.scheduler import EventScheduler, RankTask
from repro.mpi.api import MpiSession
from repro.perf.timers import PhaseTimer
from repro.rng import SeededRng


@dataclass(frozen=True)
class JobScenario:
    """Heterogeneity knobs for the multi-rank engine.

    The default instance is perfectly homogeneous: every rank is
    identical, so a warm job shows exactly zero inter-rank skew.
    """

    #: Node indices whose cores run slower (thermal throttling, a bad
    #: DIMM, a noisy neighbour daemon).
    straggler_nodes: tuple[int, ...] = ()
    #: Clock-speed divisor applied to straggler nodes (2.0 = half speed).
    straggler_slowdown: float = 1.5
    #: Upper bound of the per-rank OS-noise launch jitter in seconds;
    #: each rank draws uniformly (and deterministically, from the
    #: benchmark seed) in ``[0, os_jitter_s]``.
    os_jitter_s: float = 0.0
    #: Fraction of nodes whose disk buffer caches start warm — the
    #: cold/warm mix of a partially reused batch allocation.
    warm_node_fraction: float = 0.0
    #: Per-node OS profiles (node index -> profile); unlisted nodes use
    #: the job's default profile.
    node_os_profiles: "dict[int, OsProfile] | None" = None

    def __post_init__(self) -> None:
        if self.straggler_slowdown < 1.0:
            raise ConfigError(
                f"straggler slowdown must be >= 1, got {self.straggler_slowdown}"
            )
        if self.os_jitter_s < 0:
            raise ConfigError(f"negative jitter: {self.os_jitter_s}")
        if not 0.0 <= self.warm_node_fraction <= 1.0:
            raise ConfigError(
                f"warm fraction must be in [0, 1], got {self.warm_node_fraction}"
            )

    @property
    def is_homogeneous(self) -> bool:
        """True when no knob introduces per-rank differences."""
        return (
            not self.straggler_nodes
            and self.os_jitter_s == 0.0
            and self.warm_node_fraction == 0.0
            and not self.node_os_profiles
        )


class _RankNode(Node):
    """One rank's core: a private clock sharing the home node's disk cache.

    File reads route through the backing file system's timed FIFO queue at
    this rank's current virtual time, so concurrent ranks' reads contend.
    """

    def read_file(
        self, image: FileImage, offset: int = 0, size: int | None = None
    ) -> float:
        def fetch(n_bytes: int, n_ops: int) -> float:
            request_at = getattr(image.filesystem, "request_at", None)
            if request_at is None:
                return image.filesystem.read_seconds(n_bytes, n_ops)
            now = self.clock.seconds
            return request_at(now, n_bytes, n_ops) - now

        seconds = self.buffer_cache.read_with(image, offset, size, fetch)
        self.clock.add_seconds(seconds)
        return seconds


class _SteppedDriver(PynamicDriver):
    """A :class:`PynamicDriver` resumable one module at a time.

    The MPI test is *not* run here — the engine synchronizes all ranks
    and runs the collective once, charging each rank its barrier wait.
    """

    def __init__(self, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self._startup_s = 0.0
        self._timer: PhaseTimer | None = None
        self._fixups_before = 0
        self._eager_before = 0

    def steps(self) -> Generator[None, None, None]:
        """Import then visit every module, yielding after each one."""
        ctx = self.ctx
        if self.process.link_map is None:
            raise DriverError("program was not started before running the driver")
        self._startup_s = ctx.seconds - self.process.invoked_at
        self._timer = timer = PhaseTimer(ctx.node.clock)
        self._fixups_before = self.linker.lazy_fixups
        self._eager_before = self.linker.eager_plt_resolutions
        with timer.phase("import"), self.papi.phase("import"):
            for module in self.build.spec.modules:
                self._import_module(module)
                yield
        with timer.phase("visit"), self.papi.phase("visit"):
            for module in self.build.spec.modules:
                self._visit_module(module)
                yield

    def final_report(self, mpi_s: float) -> DriverReport:
        """The rank's :class:`DriverReport` once all steps have run."""
        if self._timer is None:
            raise DriverError("rank driver never ran its steps")
        return DriverReport(
            mode=self.build.mode.value,
            startup_s=self._startup_s,
            import_s=self._timer.get("import"),
            visit_s=self._timer.get("visit"),
            mpi_s=mpi_s,
            counters=dict(self.papi.phases),
            modules_imported=len(self._handles),
            functions_visited=self._functions_visited,
            lazy_fixups=self.linker.lazy_fixups - self._fixups_before,
            eager_plt_resolutions=(
                self.linker.eager_plt_resolutions - self._eager_before
            ),
            major_fault_bytes=self.ctx.major_fault_bytes,
        )


class MultiRankJob:
    """Run the benchmark as N interleaved per-rank simulations."""

    def __init__(
        self,
        config: PynamicConfig | None = None,
        spec: BenchmarkSpec | None = None,
        mode: BuildMode = BuildMode.VANILLA,
        n_tasks: int = 1,
        cores_per_node: int = 8,
        warm_file_cache: bool = False,
        os_profile: OsProfile | None = None,
        scenario: JobScenario | None = None,
        hash_style: HashStyle = HashStyle.SYSV,
        prelink: bool = False,
    ) -> None:
        if spec is None and config is None:
            raise ConfigError("provide a config or a pre-generated spec")
        if n_tasks < 1:
            raise ConfigError(f"need at least one task, got {n_tasks}")
        if cores_per_node < 1:
            raise ConfigError(f"need at least one core per node, got {cores_per_node}")
        self.spec = spec if spec is not None else generate(config)  # type: ignore[arg-type]
        self.mode = mode
        self.n_tasks = n_tasks
        self.cores_per_node = cores_per_node
        self.warm_file_cache = warm_file_cache
        self.os_profile = os_profile or linux_chaos()
        self.scenario = scenario or JobScenario()
        self.hash_style = hash_style
        self.prelink = prelink
        self.n_nodes = max(1, -(-n_tasks // cores_per_node))  # ceil
        for index in self.scenario.straggler_nodes:
            if not 0 <= index < self.n_nodes:
                raise ConfigError(
                    f"straggler node {index} outside the {self.n_nodes}-node job"
                )
        if self.scenario.node_os_profiles:
            for index in self.scenario.node_os_profiles:
                if not 0 <= index < self.n_nodes:
                    raise ConfigError(
                        f"OS profile for node {index} outside the "
                        f"{self.n_nodes}-node job"
                    )
        self._drivers: dict[int, _SteppedDriver] = {}

    # ------------------------------------------------------------------
    def run(self) -> JobReport:
        """Simulate every rank; returns a report with per-rank detail."""
        cluster = Cluster(
            n_nodes=self.n_nodes, cores_per_node=self.cores_per_node
        )
        cluster.validate_job_size(self.n_tasks)
        cluster.nfs.reset_queue()
        cluster.pfs.reset_queue()
        build = build_benchmark(
            self.spec, cluster.nfs, self.mode, hash_style=self.hash_style
        )
        for image in build.images.values():
            cluster.file_store.add(image)
        rng = SeededRng(getattr(self.spec.config, "seed", 0))
        self._warm_caches(cluster, build, rng)
        self._drivers = {}
        tasks: list[RankTask] = []
        for rank in range(self.n_tasks):
            node_index = rank // self.cores_per_node
            home = cluster.nodes[node_index]
            costs = home.costs
            if node_index in self.scenario.straggler_nodes:
                costs = replace(
                    costs,
                    frequency_hz=max(
                        1,
                        int(costs.frequency_hz / self.scenario.straggler_slowdown),
                    ),
                )
            profile = self.os_profile
            if self.scenario.node_os_profiles:
                profile = self.scenario.node_os_profiles.get(node_index, profile)
            rank_node = _RankNode(
                name=f"{home.name}:rank{rank}",
                costs=costs,
                buffer_cache=home.buffer_cache,
                cores=1,
            )
            tasks.append(
                RankTask(
                    rank,
                    self._rank_steps(rank, rank_node, build, profile, rng),
                    now=lambda clock=rank_node.clock: clock.seconds,
                )
            )
        EventScheduler().run(tasks)
        mpi_per_rank = self._mpi_phase(cluster)
        per_rank = [
            self._drivers[rank].final_report(mpi_s=mpi_per_rank[rank])
            for rank in range(self.n_tasks)
        ]
        return JobReport(
            n_tasks=self.n_tasks,
            n_nodes=self.n_nodes,
            rank0=per_rank[0],
            cold=not self.warm_file_cache,
            engine="multirank",
            per_rank=per_rank,
        )

    # ------------------------------------------------------------------
    def _warm_nodes(self, rng: SeededRng) -> list[int]:
        """Node indices whose buffer caches start warm."""
        if self.warm_file_cache:
            return list(range(self.n_nodes))
        fraction = self.scenario.warm_node_fraction
        if fraction <= 0.0:
            return []
        count = min(self.n_nodes, max(1, round(fraction * self.n_nodes)))
        return sorted(rng.fork("warm-mix").sample(range(self.n_nodes), count))

    def _warm_caches(
        self, cluster: Cluster, build: BuildImage, rng: SeededRng
    ) -> None:
        """Model prior activity leaving DLLs in some nodes' disk caches."""
        for index in self._warm_nodes(rng):
            for image in build.images.values():
                cluster.nodes[index].buffer_cache.read(image)

    def _rank_steps(
        self,
        rank: int,
        node: Node,
        build: BuildImage,
        profile: OsProfile,
        rng: SeededRng,
    ) -> Generator[None, None, None]:
        """One rank's whole job as a resumable generator."""
        env = {}
        if self.mode is BuildMode.LINKED_BIND_NOW:
            env["LD_BIND_NOW"] = "1"
        process = node.spawn(
            profile=profile, env=env, rng=rng.fork(f"rank{rank}:aslr")
        )
        ctx = ExecutionContext(process)
        ctx.stall_seconds(ctx.costs.job_launch_latency_s)
        if self.scenario.os_jitter_s > 0.0:
            ctx.stall_seconds(
                rng.fork(f"rank{rank}:jitter").uniform(
                    0.0, self.scenario.os_jitter_s
                )
            )
        yield
        linker = DynamicLinker(build.registry, prelink=self.prelink)
        linker.start_program(process, build.executable, ctx)
        ctx.work(ctx.costs.interpreter_boot_instructions)
        driver = _SteppedDriver(
            build=build, linker=linker, process=process, ctx=ctx
        )
        self._drivers[rank] = driver
        yield
        yield from driver.steps()

    def _mpi_phase(self, cluster: Cluster) -> list[float]:
        """Barrier every rank, run the collective self-test, charge waits.

        Each rank's MPI time is its wait for the slowest rank plus the
        collective itself — which is how stragglers tax the whole job.
        """
        if not getattr(self.spec.config, "mpi_test", False):
            return [0.0] * self.n_tasks
        finish = [
            self._drivers[rank].ctx.seconds for rank in range(self.n_tasks)
        ]
        t_max = max(finish)
        slowest = finish.index(t_max)
        session = MpiSession(cluster=cluster, n_tasks=self.n_tasks)
        ctx = self._drivers[slowest].ctx
        session.run_selftest(ctx)
        end_s = ctx.seconds
        for rank in range(self.n_tasks):
            if rank != slowest:
                self._drivers[rank].ctx.node.clock.add_seconds(
                    end_s - finish[rank]
                )
        return [end_s - finish[rank] for rank in range(self.n_tasks)]

"""The multi-rank discrete-event job engine.

The analytic job path (:mod:`repro.core.job`) simulates rank 0 in full
detail and charges the other N-1 ranks' shared-resource effects in closed
form — fast, but structurally unable to express contention scenarios:
NFS queueing skew, straggler nodes, per-node OS jitter, cold/warm cache
mixes.  This engine instantiates a real :class:`Process` +
:class:`ExecutionContext` per simulated rank, interleaves their
startup/import/visit phases on a shared virtual clock
(least-virtual-time-first, :mod:`repro.machine.scheduler`), and routes
every DLL read through the shared NFS server's timed FIFO queue
(:meth:`NFSServer.request_at`) — so queueing delay and inter-rank skew
*emerge* from the model.

Homogeneous warm jobs reproduce the analytic rank-0 numbers (the golden
regression tests pin this), so the analytic path remains the validated
fast mode; this engine is the scenario mode.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator, Sequence

from repro.core.builds import BuildImage, BuildMode, build_benchmark
from repro.core.config import PynamicConfig
from repro.core.driver import DriverReport, PynamicDriver
from repro.core.generator import generate
from repro.core.job import JobReport
from repro.core.specs import BenchmarkSpec
from repro.dist.overlay import DistributionOverlay, StagingPlan
from repro.dist.topology import DistributionSpec
from repro.elf.symbols import HashStyle
from repro.errors import ConfigError, DriverError
from repro.faults.metrics import DegradationStats
from repro.faults.spec import FaultSpec
from repro.linker.dynamic import DynamicLinker
from repro.machine.cluster import Cluster, ClusterSlice
from repro.machine.context import ExecutionContext
from repro.machine.costs import CostModel
from repro.machine.node import Node, TimedReadNode
from repro.machine.osprofile import OsProfile, linux_chaos
from repro.machine.scheduler import (
    EngineStats,
    EventScheduler,
    RankTask,
    SteppedProgram,
)
from repro.mpi.api import MpiSession
from repro.mpi.network import NetworkModel
from repro.perf.timers import PhaseTimer
from repro.rng import SeededRng


def warm_node_selection(
    n_nodes: int, fraction: float, rng: SeededRng
) -> list[int]:
    """Node indices a ``fraction`` warm mix pre-warms (deterministic).

    Shared by the job engine and the mitigation experiment's warm-mix
    axis so both draw the *same* nodes for a given benchmark seed.
    """
    if fraction <= 0.0:
        return []
    count = min(n_nodes, max(1, round(fraction * n_nodes)))
    return sorted(rng.fork("warm-mix").sample(range(n_nodes), count))


@dataclass(frozen=True)
class JobScenario:
    """Heterogeneity knobs for the multi-rank engine.

    The default instance is perfectly homogeneous: every rank is
    identical, so a warm job shows exactly zero inter-rank skew.
    """

    #: Node indices whose cores run slower (thermal throttling, a bad
    #: DIMM, a noisy neighbour daemon).
    straggler_nodes: tuple[int, ...] = ()
    #: Clock-speed divisor applied to straggler nodes (2.0 = half speed).
    straggler_slowdown: float = 1.5
    #: Upper bound of the per-rank OS-noise launch jitter in seconds;
    #: each rank draws uniformly (and deterministically, from the
    #: benchmark seed) in ``[0, os_jitter_s]``.
    os_jitter_s: float = 0.0
    #: Fraction of nodes whose disk buffer caches start warm — the
    #: cold/warm mix of a partially reused batch allocation.
    warm_node_fraction: float = 0.0
    #: Explicit node indices whose caches start warm, merged with the
    #: fraction-drawn set.  With a distribution overlay these nodes act
    #: as cache-aware secondary sources: their relay daemons serve their
    #: subtrees from the local cache instead of waiting on the root
    #: pass, so warming a well-placed interior node speeds up its whole
    #: subtree.
    warm_nodes: tuple[int, ...] = ()
    #: Per-node OS profiles (node index -> profile); unlisted nodes use
    #: the job's default profile.
    node_os_profiles: "dict[int, OsProfile] | None" = None

    def __post_init__(self) -> None:
        if self.straggler_slowdown < 1.0:
            raise ConfigError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown}"
            )
        if self.os_jitter_s < 0:
            raise ConfigError(
                f"os_jitter_s must be >= 0, got {self.os_jitter_s}"
            )
        if not 0.0 <= self.warm_node_fraction <= 1.0:
            raise ConfigError(
                f"warm_node_fraction must be in [0, 1], got "
                f"{self.warm_node_fraction}"
            )

    @property
    def is_homogeneous(self) -> bool:
        """True when no knob introduces per-rank differences."""
        return (
            not self.straggler_nodes
            and self.os_jitter_s == 0.0
            and self.warm_node_fraction == 0.0
            and not self.warm_nodes
            and not self.node_os_profiles
        )

    # -- shared per-node interpretation (job engine + multirank debugger) --
    def validate_node_indices(self, n_nodes: int) -> None:
        """Reject per-node knobs naming nodes outside an ``n_nodes`` job."""
        for index in self.straggler_nodes:
            if not 0 <= index < n_nodes:
                raise ConfigError(
                    f"straggler node {index} outside the {n_nodes}-node job"
                )
        for index in self.warm_nodes:
            if not 0 <= index < n_nodes:
                raise ConfigError(
                    f"warm node {index} outside the {n_nodes}-node job"
                )
        if self.node_os_profiles:
            for index in self.node_os_profiles:
                if not 0 <= index < n_nodes:
                    raise ConfigError(
                        f"OS profile for node {index} outside the "
                        f"{n_nodes}-node job"
                    )

    def node_costs(self, index: int, base: "CostModel") -> "CostModel":
        """``base`` with the straggler slowdown applied if node ``index``
        is throttled."""
        if index not in self.straggler_nodes:
            return base
        return replace(
            base,
            frequency_hz=max(
                1, int(base.frequency_hz / self.straggler_slowdown)
            ),
        )

    def node_profile(self, index: int, default: OsProfile) -> OsProfile:
        """The OS profile for node ``index`` (``default`` if unlisted)."""
        if self.node_os_profiles:
            return self.node_os_profiles.get(index, default)
        return default


class _SteppedDriver(PynamicDriver, SteppedProgram):
    """A :class:`PynamicDriver` resumable one module at a time.

    The MPI test is *not* run here — the engine synchronizes all ranks
    and runs the collective once, charging each rank its barrier wait.
    """

    def __init__(self, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self._startup_s = 0.0
        self._timer: PhaseTimer | None = None
        self._fixups_before = 0
        self._eager_before = 0

    def steps(self) -> Generator[None, None, None]:
        """Import then visit every module, yielding after each one."""
        ctx = self.ctx
        if self.process.link_map is None:
            raise DriverError("program was not started before running the driver")
        self._startup_s = ctx.seconds - self.process.invoked_at
        self._timer = timer = PhaseTimer(ctx.node.clock)
        self._fixups_before = self.linker.lazy_fixups
        self._eager_before = self.linker.eager_plt_resolutions
        with timer.phase("import"), self.papi.phase("import"):
            for module in self.build.spec.modules:
                self._import_module(module)
                yield
        with timer.phase("visit"), self.papi.phase("visit"):
            for module in self.build.spec.modules:
                self._visit_module(module)
                yield

    def final_report(self, mpi_s: float) -> DriverReport:
        """The rank's :class:`DriverReport` once all steps have run."""
        if self._timer is None:
            raise DriverError("rank driver never ran its steps")
        return DriverReport(
            mode=self.build.mode.value,
            startup_s=self._startup_s,
            import_s=self._timer.get("import"),
            visit_s=self._timer.get("visit"),
            mpi_s=mpi_s,
            counters=dict(self.papi.phases),
            modules_imported=len(self._handles),
            functions_visited=self._functions_visited,
            lazy_fixups=self.linker.lazy_fixups - self._fixups_before,
            eager_plt_resolutions=(
                self.linker.eager_plt_resolutions - self._eager_before
            ),
            major_fault_bytes=self.ctx.major_fault_bytes,
        )


class MultiRankJob:
    """Run the benchmark as N interleaved per-rank simulations.

    Startup interleaves per shared object (the stepped linker), imports
    and visits per module.  ``batch_homogeneous=True`` (default) enables
    representative-rank fast paths:

    - a warm, zero-heterogeneity job simulates *one* rank and replicates
      its report (``self.batched``) — warm sweeps past 1k ranks cost a
      single rank's simulation;
    - a cold, zero-heterogeneity job simulates the *first toucher* plus
      one cache-hit representative per node and replicates the latter
      for the remaining co-resident ranks (``self.cold_batched``) — the
      redundant buffer-cache-hit ranks that used to make >1k-rank cold
      jobs intractable are replicated, not simulated, while every
      node-to-NFS interaction is still played out;
    - more generally, any job whose only active heterogeneity knobs are
      per-*node* (stragglers, warm mixes, per-node OS profiles — i.e.
      ``os_jitter_s == 0``, the one per-rank knob) coalesces each node's
      co-resident ranks into representative tasks carrying a
      multiplicity count (``self.coalesced``); see :meth:`_plan_ranks`
      for which collapses are exact and which approximate.

    ``distribution`` (a :class:`repro.dist.topology.DistributionSpec`)
    stages the DLL set through the library-distribution overlay before
    the ranks' cold reads need it: relay daemons land every image in the
    node buffer caches on the same virtual timeline, and each rank's
    linker blocks on the staged availability instead of demand-paging
    from NFS.
    """

    @classmethod
    def from_scenario(
        cls, scenario_spec: "object", batch_homogeneous: bool = True
    ) -> "MultiRankJob":
        """Construct the engine run a :class:`ScenarioSpec` declares.

        The legacy keyword constructor below remains as a thin shim for
        callers that predate the scenario API; this is the declarative
        spelling.  ``batch_homogeneous`` stays a constructor knob — it
        selects an equivalent fast path, not a different measurement,
        so it is not part of the spec (or its hash).
        """
        if scenario_spec.engine != "multirank":
            raise ConfigError(
                f"engine: MultiRankJob runs engine='multirank' specs, "
                f"got {scenario_spec.engine!r}"
            )
        return cls(
            config=scenario_spec.config,
            mode=scenario_spec.mode,
            n_tasks=scenario_spec.n_tasks,
            cores_per_node=scenario_spec.cores_per_node,
            warm_file_cache=scenario_spec.warm_file_cache,
            os_profile=scenario_spec.os_profile_instance(),
            scenario=scenario_spec.job_scenario(),
            hash_style=scenario_spec.hash_style,
            prelink=scenario_spec.prelink,
            batch_homogeneous=batch_homogeneous,
            distribution=scenario_spec.distribution,
            faults=scenario_spec.faults,
        )

    def __init__(
        self,
        config: PynamicConfig | None = None,
        spec: BenchmarkSpec | None = None,
        mode: BuildMode = BuildMode.VANILLA,
        n_tasks: int = 1,
        cores_per_node: int = 8,
        warm_file_cache: bool = False,
        os_profile: OsProfile | None = None,
        scenario: JobScenario | None = None,
        hash_style: HashStyle = HashStyle.SYSV,
        prelink: bool = False,
        batch_homogeneous: bool = True,
        distribution: DistributionSpec | None = None,
        faults: FaultSpec | None = None,
    ) -> None:
        if spec is None and config is None:
            raise ConfigError("provide a config or a pre-generated spec")
        if n_tasks < 1:
            raise ConfigError(f"need at least one task, got {n_tasks}")
        if cores_per_node < 1:
            raise ConfigError(f"need at least one core per node, got {cores_per_node}")
        self.spec = spec if spec is not None else generate(config)  # type: ignore[arg-type]
        self.mode = mode
        self.n_tasks = n_tasks
        self.cores_per_node = cores_per_node
        self.warm_file_cache = warm_file_cache
        self.os_profile = os_profile or linux_chaos()
        self.scenario = scenario or JobScenario()
        self.hash_style = hash_style
        self.prelink = prelink
        self.batch_homogeneous = batch_homogeneous
        self.distribution = distribution
        # An empty fault spec is the fault-free job (the scenario layer
        # normalizes it away too; this covers direct constructor use).
        if faults is not None and faults.empty:
            faults = None
        if faults is not None and (faults.crashes or faults.links) and (
            distribution is None
        ):
            raise ConfigError(
                "faults: crashes and link faults act on the distribution "
                "overlay's relay daemons — set a distribution (brownouts "
                "alone work without one)"
            )
        self.faults = faults
        #: True once :meth:`run` took the warm homogeneous fast path.
        self.batched = False
        #: True once :meth:`run` batched cold co-resident cache-hit ranks.
        self.cold_batched = False
        #: True once :meth:`run` collapsed any co-resident lockstep ranks
        #: into a representative task with a multiplicity count (covers
        #: the cold-batch case *and* per-node heterogeneous jobs).
        self.coalesced = False
        #: Ranks actually driven by the last :meth:`run`.
        self.n_simulated = 0
        #: The overlay's staging plan (when a distribution ran).
        self.staging_plan: StagingPlan | None = None
        self.n_nodes = max(1, -(-n_tasks // cores_per_node))  # ceil
        self.scenario.validate_node_indices(self.n_nodes)
        self._drivers: dict[int, _SteppedDriver] = {}

    # ------------------------------------------------------------------
    def _node_ranks(self, node_index: int) -> range:
        """The ranks block-placed onto node ``node_index``."""
        first = node_index * self.cores_per_node
        return range(first, min(self.n_tasks, first + self.cores_per_node))

    def _plan_ranks(
        self, warm_nodes: "list[int] | None" = None
    ) -> tuple[list[int], dict[int, int]]:
        """Which ranks to simulate, and each rank's representative.

        Returns ``(simulated, representative)`` where ``representative``
        maps *every* rank to the simulated rank whose report it shares
        (itself for simulated ranks).

        Beyond the fully-homogeneous fast paths, co-resident ranks
        coalesce per node whenever no *per-rank* knob is active: launch
        jitter (``os_jitter_s``) is the only knob drawn per rank — the
        straggler, warm-mix and OS-profile knobs all apply per *node*.
        Two distinct collapses happen:

        - **Warm nodes — exact.**  Every read hits the node's resident
          cache, so co-resident ranks touch no shared queue and their
          trajectories are provably identical (lockstep); one
          representative reproduces the unbatched run bit-for-bit
          (``tests/test_coalescing.py`` pins this, stragglers included).
        - **Cold nodes — the conservative cold-batch approximation.**
          The collapsed run charges *all* of a node's demand faults to
          its first toucher while the hitter representative rides the
          cache.  An unbatched run instead lets cache-hit ranks run
          ahead in virtual time and fault later pages themselves,
          spreading the NFS load (fault parallelism a real node would
          show too).  Collapsing serializes those faults, so it bounds
          the job from above — measured 5-10% over the unbatched
          makespan on small cold jobs — which is the pre-existing
          ``cold_batched`` default the golden pins encode.

        Each collapsed group is simulated once and carries its size as
        the task's multiplicity.
        """
        scenario = self.scenario
        homogeneous = self.batch_homogeneous and scenario.is_homogeneous
        if homogeneous and self.warm_file_cache and self.n_tasks > 1:
            # Warm fast path: all reads hit the node caches, ranks are
            # fully decoupled and identical — one representative total.
            self.batched = True
            return [0], {rank: 0 for rank in range(self.n_tasks)}
        if self.batch_homogeneous and scenario.os_jitter_s == 0.0:
            # Per-node lockstep coalescing.  On a warm node every rank
            # hits the cache — one representative; on a cold node the
            # first toucher faults the DLL set in from shared storage
            # and the co-resident ranks hit the node buffer cache —
            # simulate the toucher plus one cache-hit representative.
            warm = (
                set(range(self.n_nodes))
                if self.warm_file_cache
                else set(warm_nodes or ())
            )
            simulated: list[int] = []
            representative: dict[int, int] = {}
            for node_index in range(self.n_nodes):
                ranks = self._node_ranks(node_index)
                first = ranks[0]
                simulated.append(first)
                representative[first] = first
                if node_index in warm:
                    for rank in ranks[1:]:
                        representative[rank] = first
                elif len(ranks) > 1:
                    hitter = ranks[1]
                    simulated.append(hitter)
                    for rank in ranks[1:]:
                        representative[rank] = hitter
            self.coalesced = len(simulated) < self.n_tasks
            if homogeneous and not self.warm_file_cache:
                self.cold_batched = self.coalesced
            return simulated, representative
        ranks = list(range(self.n_tasks))
        return ranks, {rank: rank for rank in ranks}

    def _stage_distribution(
        self, cluster: "Cluster | ClusterSlice", build: BuildImage,
        start_s: float = 0.0,
    ) -> StagingPlan | None:
        """Run the library-distribution overlay for a cold job."""
        if self.distribution is None or self.warm_file_cache:
            # With warm caches every node already holds the set; staging
            # would be pure overhead, so the overlay is a no-op and the
            # job is byte-identical to a plain NFS-direct warm run.
            return None
        overlay = DistributionOverlay(
            self.distribution,
            cluster,
            network=NetworkModel(),
            straggler_nodes=self.scenario.straggler_nodes,
            straggler_slowdown=self.scenario.straggler_slowdown,
            faults=self.faults,
        )
        return overlay.stage(list(build.images.values()), start_s=start_s)

    def launch(
        self,
        cluster: "Cluster | ClusterSlice",
        node_indices: "Sequence[int] | None" = None,
        start_s: float = 0.0,
    ):
        """Prepare the job's rank tasks on a (possibly shared) cluster.

        Returns ``(tasks, finalize)``: schedule ``tasks`` on an
        :class:`EventScheduler` — alone, or interleaved with *other
        jobs'* tasks on one shared timeline — then call
        ``finalize(scheduler)`` once they have all completed to get the
        :class:`JobReport`.  :meth:`run` is the solo spelling (fresh
        cluster, fresh scheduler, queues reset); the batch-queue
        workload engine is the multi-tenant one, where several jobs'
        tasks share the cluster's NFS/PFS reservation timelines and
        per-node buffer caches so cross-job contention emerges.

        ``node_indices`` selects which cluster nodes the job's local
        nodes ``0..n_nodes-1`` map onto (default: identity — the first
        ``n_nodes`` nodes).  ``start_s`` offsets every rank clock and
        the staging pass to the job's start time on the shared timeline;
        reported phase times stay durations, so reports from different
        start times are comparable.

        The caller owns queue hygiene: reset the cluster's filesystem
        queues once per *timeline*, not per job.
        """
        if start_s < 0:
            raise ConfigError(f"start_s must be >= 0, got {start_s}")
        if node_indices is not None:
            if len(node_indices) != self.n_nodes:
                raise ConfigError(
                    f"job needs {self.n_nodes} nodes, got "
                    f"{len(node_indices)} node indices"
                )
            view = ClusterSlice(cluster, node_indices)  # type: ignore[arg-type]
        else:
            view = cluster
        view.validate_job_size(self.n_tasks)
        if self.faults is not None and self.faults.brownouts:
            # Degraded-capacity windows cover staging *and* the ranks'
            # demand reads; identical windows declared by co-tenant jobs
            # on the shared filesystems are idempotent.
            for fs, target in ((view.nfs, "nfs"), (view.pfs, "pfs")):
                windows = [
                    window
                    for window in self.faults.brownouts
                    if window.target == target
                ]
                if windows:
                    fs.add_brownouts(windows)
        build = build_benchmark(
            self.spec, view.nfs, self.mode, hash_style=self.hash_style
        )
        for image in build.images.values():
            view.file_store.add(image)
        rng = SeededRng(getattr(self.spec.config, "seed", 0))
        self._drivers = {}
        self.batched = False
        self.cold_batched = False
        self.coalesced = False
        # The warm-node set is drawn once (forks are pure, so the draw is
        # identical wherever it happens) and shared by the rank plan and
        # the cache warmer.
        warm_nodes = self._warm_nodes(rng)
        simulated, representative = self._plan_ranks(warm_nodes)
        self.n_simulated = len(simulated)
        # Each simulated rank's multiplicity: how many ranks share its
        # report (1 + its coalesced replicas).
        multiplicity = {rank: 0 for rank in simulated}
        for rep in representative.values():
            multiplicity[rep] += 1
        # Only the representative's node needs its cache warmed on the
        # warm fast path, keeping it O(1) in the node count too.
        self._warm_caches(
            view, build, rng,
            node_indices=[0] if self.batched else warm_nodes,
        )
        plan = self._stage_distribution(view, build, start_s=start_s)
        self.staging_plan = plan
        tasks: list[RankTask] = []
        for rank in simulated:
            node_index = rank // self.cores_per_node
            home = view.nodes[node_index]
            costs = self.scenario.node_costs(node_index, home.costs)
            profile = self.scenario.node_profile(node_index, self.os_profile)
            rank_node = TimedReadNode(
                name=f"{home.name}:rank{rank}",
                costs=costs,
                buffer_cache=home.buffer_cache,
                cores=1,
            )
            if start_s > 0.0:
                rank_node.clock.advance_to_seconds(start_s)
            router = plan.router_for(node_index) if plan is not None else None
            tasks.append(
                RankTask(
                    rank,
                    self._rank_steps(
                        rank, rank_node, build, profile, rng, router
                    ),
                    now=lambda clock=rank_node.clock: clock.seconds,
                    multiplicity=multiplicity[rank],
                )
            )

        def finalize(scheduler: EventScheduler) -> JobReport:
            """The job's report once every task has been stepped done."""
            for task in tasks:
                if not task.done:
                    raise ConfigError(
                        f"finalize before rank {task.rank} completed"
                    )
            mpi_per_rank = self._mpi_phase(view, simulated)
            reports = {
                rank: self._drivers[rank].final_report(
                    mpi_s=mpi_per_rank[rank]
                )
                for rank in simulated
            }
            # Reports are read-only downstream, so replicated ranks share
            # their representative's instance.
            per_rank = [
                reports[representative[rank]] for rank in range(self.n_tasks)
            ]
            distribution_label = (
                self.distribution.label
                if self.distribution is not None
                else "none"
            )
            if plan is not None:
                # Durations since job start: comparable across jobs that
                # started at different points of a shared timeline.
                staging_per_node = [
                    done - start_s for done in plan.per_node_done_s
                ]
            else:
                staging_per_node = None
            nfs_windows, nfs_bookings = view.nfs.timeline_stats()
            pfs_windows, pfs_bookings = view.pfs.timeline_stats()
            if self.faults is not None:
                degradation = DegradationStats(
                    recovery_events=(
                        plan.recovery_events if plan is not None else ()
                    ),
                    refetched_bytes=(
                        plan.refetched_bytes if plan is not None else 0
                    ),
                    crashed_relays=(
                        plan.crashed_nodes if plan is not None else ()
                    ),
                    link_retries=(
                        plan.link_retries if plan is not None else 0
                    ),
                )
            else:
                degradation = None
            return JobReport(
                n_tasks=self.n_tasks,
                n_nodes=self.n_nodes,
                rank0=per_rank[0],
                cold=not self.warm_file_cache,
                engine="multirank",
                per_rank=per_rank,
                distribution=distribution_label,
                staging_per_node=staging_per_node,
                engine_stats=EngineStats(
                    scheduler_steps=scheduler.steps_run,
                    tasks_completed=scheduler.tasks_completed,
                    ranks_simulated=self.n_simulated,
                    ranks_coalesced=self.n_tasks - self.n_simulated,
                    nfs_timeline_windows=nfs_windows,
                    nfs_timeline_bookings=nfs_bookings,
                    pfs_timeline_windows=pfs_windows,
                    pfs_timeline_bookings=pfs_bookings,
                ),
                degradation=degradation,
            )

        return tasks, finalize

    def run(self) -> JobReport:
        """Simulate every rank; returns a report with per-rank detail."""
        cluster = Cluster(
            n_nodes=self.n_nodes, cores_per_node=self.cores_per_node
        )
        cluster.validate_job_size(self.n_tasks)
        cluster.nfs.reset_queue()
        cluster.pfs.reset_queue()
        tasks, finalize = self.launch(cluster)
        scheduler = EventScheduler()
        scheduler.run(tasks)
        return finalize(scheduler)

    # ------------------------------------------------------------------
    def _warm_nodes(self, rng: SeededRng) -> list[int]:
        """Node indices whose buffer caches start warm."""
        if self.warm_file_cache:
            return list(range(self.n_nodes))
        warm = set(self.scenario.warm_nodes)
        warm.update(
            warm_node_selection(
                self.n_nodes, self.scenario.warm_node_fraction, rng
            )
        )
        return sorted(warm)

    def _warm_caches(
        self,
        cluster: Cluster,
        build: BuildImage,
        rng: SeededRng,
        node_indices: "list[int] | None" = None,
    ) -> None:
        """Model prior activity leaving DLLs in some nodes' disk caches."""
        if node_indices is None:
            node_indices = self._warm_nodes(rng)
        for index in node_indices:
            for image in build.images.values():
                cluster.nodes[index].buffer_cache.read(image)

    def _rank_steps(
        self,
        rank: int,
        node: Node,
        build: BuildImage,
        profile: OsProfile,
        rng: SeededRng,
        router: "object | None" = None,
    ) -> Generator[None, None, None]:
        """One rank's whole job as a resumable generator."""
        env = {}
        if self.mode is BuildMode.LINKED_BIND_NOW:
            env["LD_BIND_NOW"] = "1"
        process = node.spawn(
            profile=profile, env=env, rng=rng.fork(f"rank{rank}:aslr")
        )
        ctx = ExecutionContext(process)
        ctx.stall_seconds(ctx.costs.job_launch_latency_s)
        if self.scenario.os_jitter_s > 0.0:
            ctx.stall_seconds(
                rng.fork(f"rank{rank}:jitter").uniform(
                    0.0, self.scenario.os_jitter_s
                )
            )
        yield
        linker = DynamicLinker(
            build.registry, prelink=self.prelink, router=router  # type: ignore[arg-type]
        )
        # Per-object startup: one step per shared object mapped, relocated
        # or PLT-filled, so cold-start NFS contention interleaves across
        # ranks during program start — not just during imports.
        yield from linker.start_program_steps(process, build.executable, ctx)
        ctx.work(ctx.costs.interpreter_boot_instructions)
        driver = _SteppedDriver(
            build=build, linker=linker, process=process, ctx=ctx
        )
        self._drivers[rank] = driver
        yield
        yield from driver.steps()

    def _mpi_phase(
        self, cluster: Cluster, simulated: list[int]
    ) -> dict[int, float]:
        """Barrier every rank, run the collective self-test, charge waits.

        Each rank's MPI time is its wait for the slowest rank plus the
        collective itself — which is how stragglers tax the whole job.
        ``simulated`` holds the ranks actually driven (the batched paths
        drive a subset whose replicas share their representative's
        timing, so the max over the subset is the true job max); the
        collective still runs at the full ``n_tasks`` width either way.
        """
        if not getattr(self.spec.config, "mpi_test", False):
            return {rank: 0.0 for rank in simulated}
        finish = {
            rank: self._drivers[rank].ctx.seconds for rank in simulated
        }
        slowest = max(simulated, key=finish.__getitem__)
        session = MpiSession(cluster=cluster, n_tasks=self.n_tasks)
        ctx = self._drivers[slowest].ctx
        session.run_selftest(ctx)
        end_s = ctx.seconds
        for rank in simulated:
            if rank != slowest:
                self._drivers[rank].ctx.node.clock.add_seconds(
                    end_s - finish[rank]
                )
        return {rank: end_s - finish[rank] for rank in simulated}

"""System-library stand-ins (libc, libpython, libmpi, ...).

Every real pyMPI process maps a handful of base DSOs before any generated
code; they anchor the front of every symbol search scope, provide the libc
and Python C-API symbols the generated modules reference, and appear in
the paper's link maps.  Symbol counts approximate 2007-era libraries.
"""

from __future__ import annotations

from repro.core.specs import SystemLibSpec

#: Hot libc functions generated code may call.
LIBC_HOT_FUNCTIONS: tuple[str, ...] = (
    "malloc",
    "free",
    "printf",
    "memcpy",
    "strlen",
    "strcmp",
    "snprintf",
    "qsort",
)

#: libc data objects modules reference through GOT relocations.
LIBC_DATA_SYMBOLS: tuple[str, ...] = ("stdout", "stderr", "environ", "errno")

#: Python C-API functions a 2007-era extension module calls.
PYTHON_API_FUNCTIONS: tuple[str, ...] = (
    "Py_InitModule4",
    "PyArg_ParseTuple",
    "Py_BuildValue",
    "PyErr_SetString",
    "PyModule_AddObject",
)

#: Python C-API data objects modules reference.
PYTHON_DATA_SYMBOLS: tuple[str, ...] = (
    "_Py_NoneStruct",
    "PyExc_RuntimeError",
    "PyExc_TypeError",
)

#: MPI entry points pyMPI itself uses.
MPI_FUNCTIONS: tuple[str, ...] = (
    "MPI_Init",
    "MPI_Comm_rank",
    "MPI_Comm_size",
    "MPI_Allreduce",
    "MPI_Bcast",
    "MPI_Barrier",
    "MPI_Send",
    "MPI_Recv",
    "MPI_Finalize",
)


def _filler(prefix: str, count: int) -> tuple[str, ...]:
    return tuple(f"{prefix}{i:05d}" for i in range(count))


def default_system_libs() -> tuple[SystemLibSpec, ...]:
    """The base DSO set mapped by every simulated pyMPI process."""
    return (
        SystemLibSpec(
            name="ld-linux",
            soname="ld-linux-x86-64.so.2",
            path="/lib64/ld-linux-x86-64.so.2",
            symbol_names=_filler("_dl_sym_", 40),
        ),
        SystemLibSpec(
            name="libc",
            soname="libc.so.6",
            path="/lib64/libc.so.6",
            symbol_names=(
                LIBC_HOT_FUNCTIONS
                + LIBC_DATA_SYMBOLS
                + _filler("__libc_sym_", 2000)
            ),
        ),
        SystemLibSpec(
            name="libm",
            soname="libm.so.6",
            path="/lib64/libm.so.6",
            symbol_names=("sin", "cos", "sqrt", "pow") + _filler("__libm_sym_", 400),
        ),
        SystemLibSpec(
            name="libpthread",
            soname="libpthread.so.0",
            path="/lib64/libpthread.so.0",
            symbol_names=("pthread_create", "pthread_join")
            + _filler("__libpthread_sym_", 200),
        ),
        SystemLibSpec(
            name="libdl",
            soname="libdl.so.2",
            path="/lib64/libdl.so.2",
            symbol_names=("dlopen", "dlsym", "dlclose", "dlerror")
            + _filler("__libdl_sym_", 16),
        ),
        SystemLibSpec(
            name="libpython",
            soname="libpython2.5.so.1.0",
            path="/usr/lib64/libpython2.5.so.1.0",
            symbol_names=(
                PYTHON_API_FUNCTIONS
                + PYTHON_DATA_SYMBOLS
                + _filler("_Py_sym_", 1500)
            ),
        ),
        SystemLibSpec(
            name="libmpi",
            soname="libmpi.so.1",
            path="/usr/lib64/libmpi.so.1",
            symbol_names=MPI_FUNCTIONS + _filler("_mpi_sym_", 600),
        ),
    )


#: Data symbols (everything else in the stand-ins is a function).
ALL_DATA_SYMBOLS: frozenset[str] = frozenset(LIBC_DATA_SYMBOLS) | frozenset(
    PYTHON_DATA_SYMBOLS
)

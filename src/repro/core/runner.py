"""One-call benchmark runs: machine + build + driver.

The :class:`BenchmarkRunner` wires everything together the way a Pynamic
invocation on Zeus would: stage the generated DLLs on NFS, (optionally)
pre-warm the node's disk buffer cache — Table I/II runs were warm-cache;
Table IV explicitly contrasts cold vs. warm — launch the process, run the
dynamic loader and the interpreter, then hand control to the driver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builds import BuildImage, BuildMode, build_benchmark
from repro.core.config import PynamicConfig
from repro.core.driver import DriverReport, PynamicDriver
from repro.core.generator import generate
from repro.core.specs import BenchmarkSpec
from repro.elf.symbols import HashStyle
from repro.errors import ConfigError
from repro.linker.dynamic import DynamicLinker
from repro.machine.cluster import Cluster
from repro.machine.context import ExecutionContext
from repro.machine.osprofile import OsProfile, linux_chaos
from repro.mpi.api import MpiSession
from repro.perf.tracing import EventTrace
from repro.rng import SeededRng


@dataclass
class RunResult:
    """Everything one benchmark run produced."""

    mode: BuildMode
    report: DriverReport
    build: BuildImage
    cluster: Cluster
    linker: DynamicLinker

    @property
    def total_s(self) -> float:
        """Table I total (startup + import + visit)."""
        return self.report.total_s


class BenchmarkRunner:
    """Run one build configuration of a generated benchmark."""

    def __init__(
        self,
        config: PynamicConfig | None = None,
        spec: BenchmarkSpec | None = None,
        mode: BuildMode = BuildMode.VANILLA,
        cluster: Cluster | None = None,
        os_profile: OsProfile | None = None,
        n_tasks: int = 1,
        warm_file_cache: bool = True,
        hash_style: HashStyle = HashStyle.SYSV,
        prelink: bool = False,
        trace: "EventTrace | None" = None,
    ) -> None:
        if spec is None and config is None:
            raise ConfigError("provide a config or a pre-generated spec")
        self.spec = spec if spec is not None else generate(config)  # type: ignore[arg-type]
        self.mode = mode
        self.cluster = cluster or Cluster(n_nodes=1)
        self.os_profile = os_profile or linux_chaos()
        self.n_tasks = n_tasks
        self.warm_file_cache = warm_file_cache
        self.hash_style = hash_style
        self.prelink = prelink
        self.trace = trace

    def run(self) -> RunResult:
        """Build, load and drive the benchmark; returns the results."""
        cluster = self.cluster
        build = build_benchmark(
            self.spec, cluster.nfs, self.mode, hash_style=self.hash_style
        )
        for image in build.images.values():
            cluster.file_store.add(image)
        node = cluster.nodes[0]
        if self.warm_file_cache:
            # Model prior activity (build, previous run) leaving the DLLs
            # in the node's disk cache; no simulated time elapses.
            for image in build.images.values():
                node.buffer_cache.read(image)
        env = {}
        if self.mode is BuildMode.LINKED_BIND_NOW:
            env["LD_BIND_NOW"] = "1"
        process = node.spawn(
            profile=self.os_profile,
            env=env,
            rng=SeededRng(getattr(self.spec.config, "seed", 0)),
        )
        ctx = ExecutionContext(process)
        # Job launcher (srun) latency, then exec + dynamic loader + the
        # interpreter boot; the driver's first line runs after that.
        ctx.stall_seconds(ctx.costs.job_launch_latency_s)
        linker = DynamicLinker(build.registry, prelink=self.prelink, trace=self.trace)
        linker.start_program(process, build.executable, ctx)
        ctx.work(ctx.costs.interpreter_boot_instructions)
        mpi_session = None
        if getattr(self.spec.config, "mpi_test", False):
            mpi_session = MpiSession(cluster=cluster, n_tasks=self.n_tasks)
        driver = PynamicDriver(
            build=build,
            linker=linker,
            process=process,
            ctx=ctx,
            mpi_session=mpi_session,
        )
        report = driver.run()
        return RunResult(
            mode=self.mode,
            report=report,
            build=build,
            cluster=cluster,
            linker=linker,
        )


def run_all_modes(
    config: PynamicConfig,
    warm_file_cache: bool = True,
) -> dict[BuildMode, RunResult]:
    """Run the three Table I build configurations on one generated spec.

    Each mode gets a fresh cluster (fresh caches) but the identical
    generated benchmark, exactly as the paper compares builds.
    """
    spec = generate(config)
    results: dict[BuildMode, RunResult] = {}
    for mode in BuildMode:
        runner = BenchmarkRunner(
            spec=spec, mode=mode, warm_file_cache=warm_file_cache
        )
        results[mode] = runner.run()
    return results

"""The unified scenario API: one declarative spec drives everything.

- :class:`ScenarioSpec` — frozen, validated, hashable parameterization
  of a simulated measurement (machine + library set + engine + warm mix
  + distribution + heterogeneity + seed), with
  ``to_dict``/``from_dict`` round-tripping, a canonical JSON form and a
  process-stable ``spec_hash``;
- :class:`Scenario` — the fluent builder
  (``Scenario.preset("llnl_multiphysics").nodes(1024).pipelined()``);
- :mod:`repro.scenario.presets` — the named preset registry;
- :data:`SCENARIO_JSON_SCHEMA` / :func:`validate_spec_dict` — the
  published schema and its validator;
- :func:`simulate` — the one entry point, ``simulate(spec) ->
  JobReport``.
"""

from repro.faults import BrownoutWindow, FaultSpec, LinkFault, RelayCrash
from repro.scenario.builder import Scenario
from repro.scenario.presets import (
    SCENARIO_PRESETS,
    register_scenario,
    scenario_preset,
    scenario_preset_names,
)
from repro.scenario.run import simulate
from repro.scenario.schema import (
    SCENARIO_JSON_SCHEMA,
    parse_spec_document,
    validate_spec_dict,
)
from repro.scenario.spec import ENGINES, OS_PROFILES, SPEC_VERSION, ScenarioSpec

__all__ = [
    "BrownoutWindow",
    "ENGINES",
    "FaultSpec",
    "LinkFault",
    "OS_PROFILES",
    "RelayCrash",
    "SCENARIO_JSON_SCHEMA",
    "SCENARIO_PRESETS",
    "SPEC_VERSION",
    "Scenario",
    "ScenarioSpec",
    "register_scenario",
    "scenario_preset",
    "scenario_preset_names",
    "parse_spec_document",
    "simulate",
    "validate_spec_dict",
]

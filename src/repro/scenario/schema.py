"""The published JSON schema for serialized :class:`ScenarioSpec`s.

:data:`SCENARIO_JSON_SCHEMA` is a draft-07-style document describing
exactly what :meth:`ScenarioSpec.to_dict` emits and
:meth:`ScenarioSpec.from_dict` accepts; a golden test pins it so schema
drift is an explicit, reviewed change.  :func:`validate_spec_dict` walks
the schema itself (a small built-in interpreter for the keyword subset
the schema uses), so the document *is* the validator — no external
``jsonschema`` dependency, and no way for the two to disagree.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.builds import BuildMode
from repro.dist.topology import SOURCES, Topology
from repro.elf.symbols import HashStyle
from repro.errors import ConfigError
from repro.faults.schema import FAULT_JSON_SCHEMA
from repro.scenario.spec import ENGINES, OS_PROFILES, SPEC_VERSION

#: Keyword subset the built-in interpreter understands.
_SUPPORTED_KEYWORDS = frozenset(
    {
        "$schema",
        "title",
        "description",
        "type",
        "enum",
        "const",
        "properties",
        "required",
        "additionalProperties",
        "items",
        "minimum",
        "maximum",
        "exclusiveMinimum",
        "exclusiveMaximum",
    }
)

# Enums are derived from the registries/enums they describe, so the
# schema cannot drift from the code — only from the golden test.
_OS_PROFILE_NAMES = sorted(OS_PROFILES)

_NODE_ARRAY = {
    "type": "array",
    "items": {"type": "integer", "minimum": 0},
}

_SIZE_MODEL_SCHEMA = {
    "type": "object",
    "additionalProperties": False,
    "properties": {
        "text_bytes_per_instruction": {"type": "number", "exclusiveMinimum": 0},
        "prologue_bytes": {"type": "integer", "minimum": 0},
        "per_argument_bytes": {"type": "integer", "minimum": 0},
        "per_call_bytes": {"type": "integer", "minimum": 0},
        "alignment_bytes": {"type": "integer", "minimum": 1},
        "entry_overhead_bytes": {"type": "integer", "minimum": 0},
        "init_bytes": {"type": "integer", "minimum": 0},
        "data_bytes_per_function": {"type": "integer", "minimum": 0},
        "data_library_base": {"type": "integer", "minimum": 0},
        "debug_bytes_per_function": {"type": "integer", "minimum": 0},
        "debug_library_base": {"type": "integer", "minimum": 0},
        "symtab_ratio": {"type": "number", "minimum": 1},
    },
}

_CONFIG_SCHEMA = {
    "type": "object",
    "additionalProperties": False,
    "properties": {
        "n_modules": {"type": "integer", "minimum": 1},
        "n_utilities": {"type": "integer", "minimum": 0},
        "avg_functions": {"type": "integer", "minimum": 1},
        "avg_utility_functions": {"type": ["integer", "null"], "minimum": 1},
        "functions_spread": {
            "type": "number",
            "minimum": 0,
            "exclusiveMaximum": 1,
        },
        "seed": {"type": "integer"},
        "max_depth": {"type": "integer", "minimum": 1},
        "enable_cross_module": {"type": "boolean"},
        "cross_module_probability": {"type": "number", "minimum": 0, "maximum": 1},
        "utility_call_probability": {"type": "number", "minimum": 0, "maximum": 1},
        "libc_call_probability": {"type": "number", "minimum": 0, "maximum": 1},
        "avg_body_instructions": {"type": "integer", "minimum": 1},
        "memory_bytes_per_function": {"type": "integer", "minimum": 0},
        "body_spread": {"type": "number", "minimum": 0, "exclusiveMaximum": 1},
        "name_length": {"type": "integer", "minimum": 0},
        "coverage": {"type": "number", "exclusiveMinimum": 0, "maximum": 1},
        "mpi_test": {"type": "boolean"},
        "size_model": _SIZE_MODEL_SCHEMA,
    },
}

_SCENARIO_SCHEMA = {
    "type": "object",
    "additionalProperties": False,
    "properties": {
        "straggler_nodes": _NODE_ARRAY,
        "straggler_slowdown": {"type": "number", "minimum": 1},
        "os_jitter_s": {"type": "number", "minimum": 0},
        "warm_fraction": {"type": "number", "minimum": 0, "maximum": 1},
        "warm_nodes": _NODE_ARRAY,
        "node_os_profiles": {
            "type": "object",
            "additionalProperties": {"type": "string", "enum": _OS_PROFILE_NAMES},
        },
    },
}

_DISTRIBUTION_SCHEMA = {
    "type": ["object", "null"],
    "additionalProperties": False,
    "properties": {
        "topology": {
            "type": "string",
            "enum": [member.value for member in Topology],
        },
        "fanout": {"type": "integer", "minimum": 1},
        "source": {"type": "string", "enum": list(SOURCES)},
        "relay_bandwidth_share": {
            "type": "number",
            "exclusiveMinimum": 0,
            "maximum": 1,
        },
        "pipelined": {"type": "boolean"},
        "chunk_bytes": {"type": ["integer", "null"], "minimum": 1},
        "daemon_spawn_s": {"type": "number", "minimum": 0},
        "straggler_relay_nodes": _NODE_ARRAY,
        "straggler_relay_slowdown": {"type": "number", "minimum": 1},
    },
}

#: The published schema for a serialized ScenarioSpec (version 1).
SCENARIO_JSON_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "ScenarioSpec",
    "description": (
        "One declarative parameterization of a simulated Pynamic "
        "measurement: machine + library set + engine + warm mix + "
        "distribution overlay + heterogeneity + seed."
    ),
    "type": "object",
    "additionalProperties": False,
    "required": ["version", "engine", "config"],
    "properties": {
        "version": {"const": SPEC_VERSION},
        "engine": {"type": "string", "enum": list(ENGINES)},
        "mode": {
            "type": "string",
            "enum": [member.value for member in BuildMode],
        },
        "n_tasks": {"type": "integer", "minimum": 1},
        "cores_per_node": {"type": "integer", "minimum": 1},
        "warm_file_cache": {"type": "boolean"},
        "os_profile": {"type": "string", "enum": _OS_PROFILE_NAMES},
        "hash_style": {
            "type": "string",
            "enum": [member.value for member in HashStyle],
        },
        "prelink": {"type": "boolean"},
        "config": _CONFIG_SCHEMA,
        "scenario": _SCENARIO_SCHEMA,
        "distribution": _DISTRIBUTION_SCHEMA,
        "faults": FAULT_JSON_SCHEMA,
    },
}


def _type_matches(value: object, type_name: str) -> bool:
    if type_name == "object":
        return isinstance(value, Mapping)
    if type_name == "array":
        return isinstance(value, (list, tuple))
    if type_name == "string":
        return isinstance(value, str)
    if type_name == "boolean":
        return isinstance(value, bool)
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "null":
        return value is None
    raise ConfigError(f"schema bug: unknown type keyword {type_name!r}")


def _validate(value: object, schema: Mapping, path: str) -> None:
    for keyword in schema:
        if keyword not in _SUPPORTED_KEYWORDS:
            raise ConfigError(
                f"schema bug: unsupported keyword {keyword!r} at {path}"
            )
    if "const" in schema and value != schema["const"]:
        raise ConfigError(
            f"{path}: expected {schema['const']!r}, got {value!r}"
        )
    if "type" in schema:
        names = schema["type"]
        if isinstance(names, str):
            names = [names]
        if not any(_type_matches(value, name) for name in names):
            raise ConfigError(
                f"{path}: expected {'/'.join(names)}, got "
                f"{type(value).__name__} ({value!r})"
            )
    if value is None:
        return  # nullable fields carry no further constraints
    if "enum" in schema and value not in schema["enum"]:
        raise ConfigError(
            f"{path}: {value!r} is not one of {schema['enum']}"
        )
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            raise ConfigError(
                f"{path}: {value!r} is below the minimum {schema['minimum']}"
            )
        if "maximum" in schema and value > schema["maximum"]:
            raise ConfigError(
                f"{path}: {value!r} is above the maximum {schema['maximum']}"
            )
        if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
            raise ConfigError(
                f"{path}: {value!r} must be greater than "
                f"{schema['exclusiveMinimum']}"
            )
        if "exclusiveMaximum" in schema and value >= schema["exclusiveMaximum"]:
            raise ConfigError(
                f"{path}: {value!r} must be less than "
                f"{schema['exclusiveMaximum']}"
            )
    if isinstance(value, (list, tuple)) and "items" in schema:
        for index, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{index}]")
    if isinstance(value, Mapping):
        properties = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in value:
                raise ConfigError(f"{path}: missing required field {key!r}")
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in properties:
                _validate(item, properties[key], f"{path}.{key}")
            elif additional is False:
                raise ConfigError(
                    f"{path}: unknown field {key!r}; known fields: "
                    f"{sorted(properties)}"
                )
            elif isinstance(additional, Mapping):
                _validate(item, additional, f"{path}.{key}")


def validate_document(data: object, schema: Mapping, path: str = "document") -> None:
    """Validate any document against a schema with the built-in interpreter.

    The public spelling of the walker behind :func:`validate_spec_dict`,
    for sibling schemas that *embed* :data:`SCENARIO_JSON_SCHEMA` (the
    workload layer's ``WORKLOAD_JSON_SCHEMA``) so one interpreter serves
    every published document shape.  ``path`` prefixes error messages.
    """
    _validate(data, schema, path)


def validate_spec_dict(data: object) -> None:
    """Validate a spec document against :data:`SCENARIO_JSON_SCHEMA`.

    Raises :class:`repro.errors.ConfigError` with a JSON-path message on
    the first violation; returns None when the document conforms.
    """
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"spec: expected a JSON object, got {type(data).__name__}"
        )
    _validate(data, SCENARIO_JSON_SCHEMA, "spec")


def parse_spec_document(data: object) -> "ScenarioSpec":
    """Validate-and-build: one entry for every spec-accepting frontend.

    Schema-validates ``data`` (field-naming :class:`ConfigError` on the
    first violation), then builds the frozen
    :class:`~repro.scenario.spec.ScenarioSpec` — whose ``spec_hash`` is
    the canonical identity the CLI (``spec hash``/``spec validate``)
    and the simulation service key on.  Guarantees both frontends can
    never diverge on what a document hashes to.
    """
    validate_spec_dict(data)
    from repro.scenario.spec import ScenarioSpec

    return ScenarioSpec.from_dict(data)

"""The unified, declarative scenario specification.

Every measurement in the paper is a parameterization of one simulated
object — a cluster launching a dynamically linked job against shared
storage.  A :class:`ScenarioSpec` is that parameterization as *data*:
one frozen, validated, hashable value holding the machine shape, the
generated library set, the engine, the warm mix, the distribution
overlay and the heterogeneity knobs.  Specs round-trip through
:meth:`to_dict`/:meth:`from_dict` (against the published JSON schema in
:mod:`repro.scenario.schema`), and :attr:`spec_hash` is a canonical
sha256 digest that is stable across processes — the sweep runner's disk
cache keys on it, so the same grid point expressed through legacy job
kwargs and through a spec shares one cache entry.

Construct specs directly, through the fluent
:class:`repro.scenario.builder.Scenario` builder, or from the preset
registry (:mod:`repro.scenario.presets`); run one with
:func:`repro.scenario.run.simulate`.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Mapping

from repro.codegen.sizes import SizeModel
from repro.core.builds import BuildMode
from repro.core.config import PynamicConfig
from repro.dist.topology import DistributionSpec, Topology
from repro.elf.symbols import HashStyle
from repro.errors import ConfigError
from repro.faults.spec import FaultSpec
from repro.machine.osprofile import OsProfile, aix32, bluegene, linux_chaos

#: Valid values of the ``engine`` field.
ENGINES = ("analytic", "multirank")

#: Version stamp embedded in every serialized spec (bump on breaking
#: layout changes; :meth:`ScenarioSpec.from_dict` rejects mismatches).
SPEC_VERSION = 1


def _linux_chaos_aslr() -> OsProfile:
    """CHAOS Linux with exec-shield address randomization enabled."""
    return linux_chaos(randomize_load_addresses=True)


#: Name -> factory for every OS profile a spec may reference.  Specs
#: store profile *names* (not objects) so they stay JSON-serializable.
OS_PROFILES: dict[str, Callable[[], OsProfile]] = {
    "linux_chaos": linux_chaos,
    "linux_chaos_aslr": _linux_chaos_aslr,
    "aix32": aix32,
    "bluegene": bluegene,
}


def _profile_name(profile: OsProfile) -> str:
    """The registry name of ``profile`` (ConfigError when unregistered)."""
    for name, factory in OS_PROFILES.items():
        if factory() == profile:
            return name
    raise ConfigError(
        f"os_profile: OS profile {profile.name!r} is not in the scenario "
        f"registry; registered profiles: {sorted(OS_PROFILES)}"
    )


def _float_fields(cls: type) -> frozenset:
    """Dataclass fields declared with a float default.

    These serialize as JSON floats even when spelled as ints
    (``coverage=1`` vs ``coverage=1.0``), so equal specs always share
    one canonical JSON text and one hash.  Derived from the dataclass
    itself so a new float knob can never drift out of the set.
    """
    return frozenset(
        f.name for f in fields(cls) if isinstance(f.default, float)
    )


#: PynamicConfig / SizeModel fields serialized as JSON floats.
_CONFIG_FLOAT_FIELDS = _float_fields(PynamicConfig)
_SIZE_MODEL_FLOAT_FIELDS = _float_fields(SizeModel)


def _as_sorted_nodes(value: object, field_name: str) -> tuple[int, ...]:
    """Normalize a node-index collection to a sorted unique tuple."""
    if not isinstance(value, (tuple, list)):
        raise ConfigError(
            f"{field_name} must be a sequence of node indices, got {value!r}"
        )
    for index in value:
        if not isinstance(index, int) or isinstance(index, bool):
            raise ConfigError(
                f"{field_name} entries must be integers, got {index!r}"
            )
        if index < 0:
            raise ConfigError(
                f"{field_name} entries must be non-negative, got {index}"
            )
    return tuple(sorted(set(value)))


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative, hashable description of a simulated measurement.

    The default instance is the analytic engine's default job: one task
    of the default library set on one 8-core node, cold caches, no
    overlay, no heterogeneity.  Validation happens at construction;
    every violation raises :class:`repro.errors.ConfigError` naming the
    offending field.
    """

    #: The generated library set (modules, utilities, seed, sizes).
    config: PynamicConfig = field(default_factory=PynamicConfig)
    #: Which job engine runs the spec ("analytic" or "multirank").
    engine: str = "analytic"
    #: Build mode of the benchmark (Table I rows).
    mode: BuildMode = BuildMode.VANILLA
    #: MPI tasks in the job.
    n_tasks: int = 1
    #: Cores per cluster node (tasks are block-placed).
    cores_per_node: int = 8
    #: True: every node's buffer cache starts with the DLL set resident.
    warm_file_cache: bool = False
    #: OS profile name (key of :data:`OS_PROFILES`).
    os_profile: str = "linux_chaos"
    #: ELF hash section the dynamic linker walks.
    hash_style: HashStyle = HashStyle.SYSV
    #: Pre-resolve relocations at build time (the prelink ablation).
    prelink: bool = False
    #: Node indices whose cores run slower (multirank only).
    straggler_nodes: tuple[int, ...] = ()
    #: Clock-speed divisor applied to straggler nodes.
    straggler_slowdown: float = 1.5
    #: Upper bound of per-rank OS-noise launch jitter in seconds.
    os_jitter_s: float = 0.0
    #: Fraction of nodes whose disk caches start warm (multirank only).
    warm_fraction: float = 0.0
    #: Explicit warm node indices, merged with the fraction-drawn set.
    warm_nodes: tuple[int, ...] = ()
    #: Per-node OS profile overrides as ``(node_index, profile_name)``.
    node_os_profiles: tuple[tuple[int, str], ...] = ()
    #: Library-distribution overlay (None = demand-paged NFS).
    distribution: DistributionSpec | None = None
    #: Seeded fault injection (None = fault-free; an *empty* FaultSpec
    #: is normalized to None so the fault-free twin shares one hash).
    faults: FaultSpec | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.config, PynamicConfig):
            raise ConfigError(
                f"config must be a PynamicConfig, got {type(self.config).__name__}"
            )
        if self.engine not in ENGINES:
            raise ConfigError(
                f"engine: unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if not isinstance(self.mode, BuildMode):
            raise ConfigError(
                f"mode must be a BuildMode, got {self.mode!r}"
            )
        if not isinstance(self.hash_style, HashStyle):
            raise ConfigError(
                f"hash_style must be a HashStyle, got {self.hash_style!r}"
            )
        if not isinstance(self.n_tasks, int) or isinstance(self.n_tasks, bool):
            raise ConfigError(f"n_tasks must be an integer, got {self.n_tasks!r}")
        if self.n_tasks < 1:
            raise ConfigError(f"n_tasks: need at least one task, got {self.n_tasks}")
        if not isinstance(self.cores_per_node, int) or isinstance(
            self.cores_per_node, bool
        ):
            raise ConfigError(
                f"cores_per_node must be an integer, got {self.cores_per_node!r}"
            )
        if self.cores_per_node < 1:
            raise ConfigError(
                f"cores_per_node: need at least one core per node, got "
                f"{self.cores_per_node}"
            )
        if self.os_profile not in OS_PROFILES:
            raise ConfigError(
                f"os_profile: unknown profile {self.os_profile!r}; choose "
                f"from {sorted(OS_PROFILES)}"
            )
        for name in ("straggler_slowdown", "os_jitter_s", "warm_fraction"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigError(f"{name} must be a number, got {value!r}")
            # NaN slips past every comparison below (it fails no ``<``)
            # and inf passes the one-sided ones; either would poison the
            # canonical spec hash and emit invalid JSON, so non-finite
            # values are rejected here by name.
            if not math.isfinite(value):
                raise ConfigError(
                    f"{name} must be a finite number, got {value!r}"
                )
        if self.straggler_slowdown < 1.0:
            raise ConfigError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown}"
            )
        if self.os_jitter_s < 0:
            raise ConfigError(f"os_jitter_s must be >= 0, got {self.os_jitter_s}")
        if not 0.0 <= self.warm_fraction <= 1.0:
            raise ConfigError(
                f"warm_fraction must be in [0, 1], got {self.warm_fraction}"
            )
        if self.distribution is not None and not isinstance(
            self.distribution, DistributionSpec
        ):
            raise ConfigError(
                f"distribution must be a DistributionSpec or None, got "
                f"{type(self.distribution).__name__}"
            )
        if self.faults is not None:
            if not isinstance(self.faults, FaultSpec):
                raise ConfigError(
                    f"faults must be a FaultSpec or None, got "
                    f"{type(self.faults).__name__}"
                )
            # An empty fault block is the fault-free twin: normalize it
            # away so both spellings share one canonical JSON and one
            # spec hash (and one warehouse cache entry).
            if self.faults.empty:
                object.__setattr__(self, "faults", None)
        # Normalize node collections to sorted unique tuples so that
        # equal scenarios spelled in different orders hash identically.
        object.__setattr__(
            self,
            "straggler_nodes",
            _as_sorted_nodes(self.straggler_nodes, "straggler_nodes"),
        )
        object.__setattr__(
            self, "warm_nodes", _as_sorted_nodes(self.warm_nodes, "warm_nodes")
        )
        object.__setattr__(
            self, "node_os_profiles", self._normalized_profiles()
        )
        n_nodes = self.n_nodes
        for field_name in ("straggler_nodes", "warm_nodes"):
            for index in getattr(self, field_name):
                if index >= n_nodes:
                    raise ConfigError(
                        f"{field_name}: node {index} outside the "
                        f"{n_nodes}-node job"
                    )
        for index, _ in self.node_os_profiles:
            if index >= n_nodes:
                raise ConfigError(
                    f"node_os_profiles: node {index} outside the "
                    f"{n_nodes}-node job"
                )
        if self.faults is not None:
            for crash in self.faults.crashes:
                if crash.node >= n_nodes:
                    raise ConfigError(
                        f"faults.crashes: node {crash.node} outside the "
                        f"{n_nodes}-node job"
                    )
            for link in self.faults.links:
                if link.node >= n_nodes:
                    raise ConfigError(
                        f"faults.links: node {link.node} outside the "
                        f"{n_nodes}-node job"
                    )
            if (self.faults.crashes or self.faults.links) and (
                self.distribution is None
            ):
                raise ConfigError(
                    "faults: crashes and link faults act on the "
                    "distribution overlay's relay daemons — set a "
                    "distribution (brownouts alone work without one)"
                )
        if self.engine == "analytic":
            for field_name in self._heterogeneity_fields():
                raise ConfigError(
                    f"{field_name} requires engine='multirank' (the "
                    f"analytic engine simulates homogeneous rank 0 only)"
                )
            if self.distribution is not None:
                raise ConfigError(
                    "distribution requires engine='multirank' (overlays "
                    "run on the discrete-event engine)"
                )
            if self.faults is not None:
                raise ConfigError(
                    "faults requires engine='multirank' (fault injection "
                    "runs on the discrete-event engine)"
                )

    def _normalized_profiles(self) -> tuple[tuple[int, str], ...]:
        value = self.node_os_profiles
        if isinstance(value, Mapping):
            value = tuple(value.items())
        if not isinstance(value, (tuple, list)):
            raise ConfigError(
                f"node_os_profiles must be a mapping or a sequence of "
                f"(node, profile) pairs, got {value!r}"
            )
        seen: dict[int, str] = {}
        for entry in value:
            try:
                index, name = entry
            except (TypeError, ValueError):
                raise ConfigError(
                    f"node_os_profiles entries must be (node, profile) "
                    f"pairs, got {entry!r}"
                ) from None
            if not isinstance(index, int) or isinstance(index, bool) or index < 0:
                raise ConfigError(
                    f"node_os_profiles: node index must be a non-negative "
                    f"integer, got {index!r}"
                )
            if name not in OS_PROFILES:
                raise ConfigError(
                    f"node_os_profiles: unknown profile {name!r} for node "
                    f"{index}; choose from {sorted(OS_PROFILES)}"
                )
            if index in seen and seen[index] != name:
                raise ConfigError(
                    f"node_os_profiles: node {index} listed twice "
                    f"({seen[index]!r}, {name!r})"
                )
            seen[index] = name
        return tuple(sorted(seen.items()))

    def _heterogeneity_fields(self) -> list[str]:
        """Names of the fields that make this spec heterogeneous."""
        names = []
        if self.straggler_nodes:
            names.append("straggler_nodes")
        if self.os_jitter_s > 0.0:
            names.append("os_jitter_s")
        if self.warm_fraction > 0.0:
            names.append("warm_fraction")
        if self.warm_nodes:
            names.append("warm_nodes")
        if self.node_os_profiles:
            names.append("node_os_profiles")
        return names

    # -- derived views ------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Cluster nodes the job occupies (block placement)."""
        return max(1, -(-self.n_tasks // self.cores_per_node))

    @property
    def is_homogeneous(self) -> bool:
        """True when no knob introduces per-rank differences."""
        return not self._heterogeneity_fields()

    @property
    def seed(self) -> int:
        """The benchmark generator seed (lives on the library config)."""
        return self.config.seed

    def os_profile_instance(self) -> OsProfile:
        """The :class:`OsProfile` object the name resolves to."""
        return OS_PROFILES[self.os_profile]()

    def job_scenario(self) -> "object | None":
        """The :class:`repro.core.multirank.JobScenario` twin of the
        heterogeneity fields (None when perfectly homogeneous, which
        keeps spec-built jobs bit-identical to legacy-kwarg ones)."""
        if self.is_homogeneous:
            return None
        from repro.core.multirank import JobScenario

        profiles = {
            index: OS_PROFILES[name]()
            for index, name in self.node_os_profiles
        }
        return JobScenario(
            straggler_nodes=self.straggler_nodes,
            straggler_slowdown=self.straggler_slowdown,
            os_jitter_s=self.os_jitter_s,
            warm_node_fraction=self.warm_fraction,
            warm_nodes=self.warm_nodes,
            node_os_profiles=profiles or None,
        )

    def with_(self, **changes: object) -> "ScenarioSpec":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # -- legacy-kwarg normalization ----------------------------------------
    @classmethod
    def from_job_kwargs(
        cls,
        config: PynamicConfig | None = None,
        mode: BuildMode = BuildMode.VANILLA,
        n_tasks: int = 1,
        cores_per_node: int = 8,
        warm_file_cache: bool = False,
        os_profile: OsProfile | None = None,
        engine: str = "analytic",
        scenario: "object | None" = None,
        hash_style: HashStyle = HashStyle.SYSV,
        prelink: bool = False,
        distribution: DistributionSpec | None = None,
        faults: FaultSpec | None = None,
    ) -> "ScenarioSpec":
        """Normalize the legacy :class:`repro.core.job.PynamicJob` kwargs.

        Raises :class:`ConfigError` when the kwargs are not expressible
        as a spec — a pre-generated ``BenchmarkSpec`` instead of a
        config, an OS profile outside the registry, or a non-standard
        scenario object.
        """
        if config is None:
            raise ConfigError(
                "config: a ScenarioSpec needs the generator config (jobs "
                "built from a pre-generated BenchmarkSpec have no "
                "declarative spelling)"
            )
        profile_name = (
            "linux_chaos" if os_profile is None else _profile_name(os_profile)
        )
        scenario_fields: dict[str, object] = {}
        if scenario is not None:
            from repro.core.multirank import JobScenario

            if type(scenario) is not JobScenario:
                raise ConfigError(
                    f"scenario: only JobScenario instances have a "
                    f"declarative spelling, got {type(scenario).__name__}"
                )
            profiles = scenario.node_os_profiles or {}
            scenario_fields = {
                "straggler_nodes": scenario.straggler_nodes,
                "straggler_slowdown": scenario.straggler_slowdown,
                "os_jitter_s": scenario.os_jitter_s,
                "warm_fraction": scenario.warm_node_fraction,
                "warm_nodes": scenario.warm_nodes,
                "node_os_profiles": tuple(
                    (index, _profile_name(profile))
                    for index, profile in profiles.items()
                ),
            }
        return cls(
            config=config,
            engine=engine,
            mode=mode,
            n_tasks=n_tasks,
            cores_per_node=cores_per_node,
            warm_file_cache=warm_file_cache,
            os_profile=profile_name,
            hash_style=hash_style,
            prelink=prelink,
            distribution=distribution,
            faults=faults,
            **scenario_fields,  # type: ignore[arg-type]
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-ready nested dict (see ``repro.scenario.schema``).

        Fields declared as floats are serialized as floats even when
        spelled as ints (``coverage=1`` vs ``coverage=1.0``), so equal
        specs always share one canonical JSON text and one hash.
        """
        config_dict: dict[str, object] = {}
        for cfg_field in fields(PynamicConfig):
            value = getattr(self.config, cfg_field.name)
            if cfg_field.name == "size_model":
                if value != SizeModel():
                    config_dict["size_model"] = {
                        f.name: (
                            float(getattr(value, f.name))
                            if f.name in _SIZE_MODEL_FLOAT_FIELDS
                            else getattr(value, f.name)
                        )
                        for f in fields(SizeModel)
                    }
                continue
            if cfg_field.name in _CONFIG_FLOAT_FIELDS:
                value = float(value)
            config_dict[cfg_field.name] = value
        data: dict[str, object] = {
            "version": SPEC_VERSION,
            "engine": self.engine,
            "mode": self.mode.value,
            "n_tasks": self.n_tasks,
            "cores_per_node": self.cores_per_node,
            "warm_file_cache": self.warm_file_cache,
            "os_profile": self.os_profile,
            "hash_style": self.hash_style.value,
            "prelink": self.prelink,
            "config": config_dict,
            "scenario": {
                "straggler_nodes": list(self.straggler_nodes),
                "straggler_slowdown": float(self.straggler_slowdown),
                "os_jitter_s": float(self.os_jitter_s),
                "warm_fraction": float(self.warm_fraction),
                "warm_nodes": list(self.warm_nodes),
                "node_os_profiles": {
                    str(index): name for index, name in self.node_os_profiles
                },
            },
            "distribution": None,
        }
        if self.distribution is not None:
            data["distribution"] = {
                "topology": self.distribution.topology.value,
                "fanout": self.distribution.fanout,
                "source": self.distribution.source,
                "relay_bandwidth_share": float(
                    self.distribution.relay_bandwidth_share
                ),
                "pipelined": self.distribution.pipelined,
                "chunk_bytes": self.distribution.chunk_bytes,
                "daemon_spawn_s": float(self.distribution.daemon_spawn_s),
                # Verbatim, not sorted: DistributionSpec equality is
                # order-sensitive, and round-trip fidelity wins here.
                "straggler_relay_nodes": list(
                    self.distribution.straggler_relay_nodes
                ),
                "straggler_relay_slowdown": float(
                    self.distribution.straggler_relay_slowdown
                ),
            }
        # Emitted only when set: every pre-existing spec document, hash
        # pin and warehouse cache key predates the faults field and must
        # stay byte-identical.
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict).

        Missing optional keys take their defaults; unknown keys raise
        :class:`ConfigError` naming the key, so typos never pass
        silently.
        """
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"spec document must be a JSON object, got {type(data).__name__}"
            )
        known = {
            "version",
            "engine",
            "mode",
            "n_tasks",
            "cores_per_node",
            "warm_file_cache",
            "os_profile",
            "hash_style",
            "prelink",
            "config",
            "scenario",
            "distribution",
            "faults",
        }
        for key in data:
            if key not in known:
                raise ConfigError(
                    f"unknown spec field {key!r}; known fields: {sorted(known)}"
                )
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigError(
                f"version: unsupported spec version {version!r} "
                f"(this library reads version {SPEC_VERSION})"
            )
        config = _config_from_dict(data.get("config", {}))
        scenario = data.get("scenario", {})
        if not isinstance(scenario, Mapping):
            raise ConfigError("scenario block must be a JSON object")
        scenario_known = {
            "straggler_nodes",
            "straggler_slowdown",
            "os_jitter_s",
            "warm_fraction",
            "warm_nodes",
            "node_os_profiles",
        }
        for key in scenario:
            if key not in scenario_known:
                raise ConfigError(
                    f"scenario: unknown field {key!r}; known fields: "
                    f"{sorted(scenario_known)}"
                )
        raw_profiles = scenario.get("node_os_profiles", {})
        if not isinstance(raw_profiles, Mapping):
            raise ConfigError("scenario.node_os_profiles must be an object")
        try:
            node_profiles = tuple(
                (int(index), name) for index, name in raw_profiles.items()
            )
        except (TypeError, ValueError):
            raise ConfigError(
                "scenario.node_os_profiles keys must be node indices"
            ) from None
        return cls(
            config=config,
            engine=_expect(data, "engine", str, "analytic"),
            mode=_enum_from(data, "mode", BuildMode, BuildMode.VANILLA),
            n_tasks=_expect(data, "n_tasks", int, 1),
            cores_per_node=_expect(data, "cores_per_node", int, 8),
            warm_file_cache=_expect(data, "warm_file_cache", bool, False),
            os_profile=_expect(data, "os_profile", str, "linux_chaos"),
            hash_style=_enum_from(data, "hash_style", HashStyle, HashStyle.SYSV),
            prelink=_expect(data, "prelink", bool, False),
            straggler_nodes=tuple(scenario.get("straggler_nodes", ())),
            straggler_slowdown=scenario.get("straggler_slowdown", 1.5),
            os_jitter_s=scenario.get("os_jitter_s", 0.0),
            warm_fraction=scenario.get("warm_fraction", 0.0),
            warm_nodes=tuple(scenario.get("warm_nodes", ())),
            node_os_profiles=node_profiles,
            distribution=_distribution_from_dict(data.get("distribution")),
            faults=_faults_from_dict(data.get("faults")),
        )

    def canonical_json(self) -> str:
        """Deterministic JSON text of :meth:`to_dict` (sorted, compact).

        ``allow_nan=False`` is a backstop: validation already rejects
        non-finite floats field-by-field, so any that still reach here
        (a new knob missing its check) fail loudly instead of emitting
        the ``NaN``/``Infinity`` tokens JSON forbids.
        """
        try:
            return json.dumps(
                self.to_dict(),
                sort_keys=True,
                separators=(",", ":"),
                allow_nan=False,
            )
        except ValueError as exc:
            raise ConfigError(
                f"spec contains a non-finite float and has no canonical "
                f"JSON form ({exc})"
            ) from None

    @property
    def spec_hash(self) -> str:
        """sha256 of the canonical JSON — stable across processes.

        This is the digest the sweep runner's disk cache keys on, so
        any two spellings of the same grid point (legacy kwargs, fluent
        builder, JSON file) land on one cache entry.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()


def _expect(data: Mapping, key: str, kind: type, default: object) -> object:
    """``data[key]`` checked against ``kind`` (bool-vs-int aware)."""
    value = data.get(key, default)
    if kind is int and isinstance(value, bool):
        raise ConfigError(f"{key} must be an integer, got {value!r}")
    if kind is bool and not isinstance(value, bool):
        raise ConfigError(f"{key} must be a boolean, got {value!r}")
    if not isinstance(value, kind):
        raise ConfigError(
            f"{key} must be a {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _enum_from(data: Mapping, key: str, enum_cls: type, default: object) -> object:
    """Parse an enum field by value, mapping ValueError to ConfigError."""
    raw = data.get(key)
    if raw is None:
        return default
    if isinstance(raw, enum_cls):
        return raw
    try:
        return enum_cls(raw)
    except ValueError:
        choices = sorted(member.value for member in enum_cls)  # type: ignore[attr-defined]
        raise ConfigError(
            f"{key}: unknown value {raw!r}; choose from {choices}"
        ) from None


def _config_from_dict(data: object) -> PynamicConfig:
    """Rebuild a :class:`PynamicConfig` (strict on unknown keys)."""
    if not isinstance(data, Mapping):
        raise ConfigError("config block must be a JSON object")
    known = {f.name for f in fields(PynamicConfig)}
    kwargs: dict[str, object] = {}
    for key, value in data.items():
        if key not in known:
            raise ConfigError(
                f"config: unknown field {key!r}; known fields: {sorted(known)}"
            )
        if key == "size_model":
            if not isinstance(value, Mapping):
                raise ConfigError("config.size_model must be a JSON object")
            model_known = {f.name for f in fields(SizeModel)}
            for model_key in value:
                if model_key not in model_known:
                    raise ConfigError(
                        f"config.size_model: unknown field {model_key!r}"
                    )
            kwargs[key] = SizeModel(**value)
            continue
        kwargs[key] = value
    try:
        return PynamicConfig(**kwargs)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ConfigError(f"config: {exc}") from None


def _faults_from_dict(data: object) -> FaultSpec | None:
    """Rebuild the optional faults block."""
    if data is None:
        return None
    if not isinstance(data, Mapping):
        raise ConfigError("faults block must be a JSON object or null")
    return FaultSpec.from_dict(dict(data))


def _distribution_from_dict(data: object) -> DistributionSpec | None:
    """Rebuild the optional distribution block."""
    if data is None:
        return None
    if not isinstance(data, Mapping):
        raise ConfigError("distribution block must be a JSON object or null")
    known = {f.name for f in fields(DistributionSpec)}
    for key in data:
        if key not in known:
            raise ConfigError(
                f"distribution: unknown field {key!r}; known fields: "
                f"{sorted(known)}"
            )
    topology = _enum_from(data, "topology", Topology, Topology.BINOMIAL)
    kwargs: dict[str, object] = {"topology": topology}
    for key in known - {"topology", "straggler_relay_nodes"}:
        if key in data:
            kwargs[key] = data[key]
    if "straggler_relay_nodes" in data:
        raw = data["straggler_relay_nodes"]
        if not isinstance(raw, (list, tuple)):
            raise ConfigError(
                "distribution.straggler_relay_nodes must be an array"
            )
        kwargs["straggler_relay_nodes"] = tuple(raw)
    return DistributionSpec(**kwargs)  # type: ignore[arg-type]

"""The scenario preset registry: named, reusable grid anchors.

A preset is a zero-argument factory returning a full
:class:`ScenarioSpec` — the benchmark-suite-as-data idea: every named
measurement of the repo is a value in this registry, and new studies
start from a preset and override fields instead of re-plumbing code
(``Scenario.preset("llnl_multiphysics").nodes(1024)...``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.core import presets as config_presets
from repro.dist.topology import DistributionSpec, Topology
from repro.errors import ConfigError
from repro.scenario.spec import ScenarioSpec

#: name -> zero-argument factory producing a ScenarioSpec.
SCENARIO_PRESETS: dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(
    name: str,
) -> Callable[[Callable[[], ScenarioSpec]], Callable[[], ScenarioSpec]]:
    """Decorator registering a scenario preset under ``name``."""

    def wrap(func: Callable[[], ScenarioSpec]) -> Callable[[], ScenarioSpec]:
        if name in SCENARIO_PRESETS:
            raise ConfigError(f"scenario preset {name!r} registered twice")
        SCENARIO_PRESETS[name] = func
        return func

    return wrap


def scenario_preset(name: str) -> ScenarioSpec:
    """Build the preset registered under ``name``."""
    try:
        factory = SCENARIO_PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario preset {name!r}; available: "
            f"{sorted(SCENARIO_PRESETS)}"
        ) from None
    return factory()


def scenario_preset_names() -> list[str]:
    """Names of all registered presets."""
    return sorted(SCENARIO_PRESETS)


@register_scenario("tiny")
def tiny() -> ScenarioSpec:
    """The seconds-fast test workload on the analytic engine."""
    return ScenarioSpec(config=config_presets.tiny())


@register_scenario("table1")
def table1() -> ScenarioSpec:
    """Table I/II's warm single-task comparison workload."""
    return ScenarioSpec(
        config=config_presets.table1_config(), warm_file_cache=True
    )


@register_scenario("table4")
def table4() -> ScenarioSpec:
    """The debugger-startup (Table IV) workload."""
    return ScenarioSpec(config=config_presets.table4_config())


@register_scenario("llnl_multiphysics")
def llnl_multiphysics() -> ScenarioSpec:
    """The paper's full-scale multiphysics model (280 + 215 x 1850).

    Size it analytically as much as you like; *running* it means
    simulating ~10^6 generated functions — derive runnable studies from
    :func:`llnl_multiphysics_scaled` instead.
    """
    return ScenarioSpec(config=config_presets.llnl_multiphysics())


@register_scenario("llnl_multiphysics_scaled")
def llnl_multiphysics_scaled() -> ScenarioSpec:
    """The full-library-count mitigation study at >1k nodes.

    Keeps the paper's complete DLL set — 280 Python modules plus 215
    utility libraries, 495 images staged per node — while scaling the
    *per-library* work (functions, bodies) down ~100x so the overlay
    and the job are simulable.  1536 nodes, one rank per node, cold
    caches, chunked cut-through binomial broadcast: the configuration
    the ROADMAP's full-scale mitigation item calls for, served through
    the disk-backed sweep cache by ``mitigation_scaled``.
    """
    config = replace(
        config_presets.llnl_multiphysics(),
        avg_functions=18,
        avg_body_instructions=20,
    )
    return ScenarioSpec(
        config=config,
        engine="multirank",
        n_tasks=1536,
        cores_per_node=1,
        distribution=DistributionSpec(
            topology=Topology.BINOMIAL,
            pipelined=True,
            chunk_bytes=1 << 20,
        ),
    )


@register_scenario("llnl_multiphysics_xl")
def llnl_multiphysics_xl() -> ScenarioSpec:
    """The exascale-era 16k-node cold staging cell (ROADMAP north star).

    Same shape as :func:`llnl_multiphysics_scaled` — the complete
    495-DLL multiphysics set, one rank per node, cold caches, chunked
    cut-through binomial broadcast — at 16384 nodes, with the
    per-library work scaled down another notch.  Tier-2 CI runs it
    through ``job --staging-only``: the ~8M-relay-event overlay pass
    (every DLL delivered to every node) completes in minutes, runnable
    at all only because the reservation timelines book in O(log n).
    The *full* job — 16384 per-rank dynamic-link simulations on top —
    is still hours of wall time and stays an open ROADMAP item.
    """
    config = replace(
        config_presets.llnl_multiphysics(),
        avg_functions=6,
        avg_body_instructions=10,
    )
    return ScenarioSpec(
        config=config,
        engine="multirank",
        n_tasks=16384,
        cores_per_node=1,
        distribution=DistributionSpec(
            topology=Topology.BINOMIAL,
            pipelined=True,
            chunk_bytes=1 << 20,
        ),
    )

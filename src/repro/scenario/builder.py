"""The fluent :class:`Scenario` builder.

A builder is an immutable chain of edits over an unvalidated field set;
:meth:`Scenario.build` materializes (and validates) the
:class:`ScenarioSpec`.  Because validation is deferred to ``build()``,
order does not matter — ``.pipelined().nodes(1024)`` and
``.nodes(1024).pipelined()`` agree — and the engine is auto-selected:
a chain that adds an overlay or any heterogeneity builds a multirank
spec unless ``.engine()`` pinned one explicitly.

    >>> spec = (Scenario.preset("llnl_multiphysics")
    ...         .nodes(1024)
    ...         .pipelined(chunk_bytes=1 << 20)
    ...         .warm_fraction(0.5)
    ...         .build())
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Mapping

from repro.core.builds import BuildMode
from repro.core.config import PynamicConfig
from repro.dist.topology import DistributionSpec, Topology
from repro.elf.symbols import HashStyle
from repro.errors import ConfigError
from repro.faults.spec import FaultSpec
from repro.scenario.spec import ScenarioSpec


#: Sentinel distinguishing "argument not passed" from an explicit None.
_UNSET = object()


class Scenario:
    """Fluent, immutable builder of :class:`ScenarioSpec` values.

    Every method returns a *new* builder, so partial chains can be
    shared and forked when declaring experiment grids::

        base = Scenario.preset("tiny").nodes(64)
        specs = [base.distribution(name).build() for name in strategies]
    """

    def __init__(self, spec: ScenarioSpec | None = None, **overrides: object) -> None:
        base = spec if spec is not None else ScenarioSpec()
        self._fields: dict[str, object] = {
            f.name: getattr(base, f.name) for f in fields(ScenarioSpec)
        }
        #: True once .engine() pinned the engine explicitly (disables
        #: the build-time auto-selection, which only ever *upgrades*
        #: analytic to multirank when the chain demands it).
        self._engine_pinned = False
        self._fields.update(overrides)

    @classmethod
    def preset(cls, name: str) -> "Scenario":
        """A builder seeded from a registered preset spec."""
        from repro.scenario.presets import scenario_preset

        return cls(scenario_preset(name))

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Scenario":
        """A builder seeded from an existing spec."""
        return cls(spec)

    def _with(self, **changes: object) -> "Scenario":
        clone = Scenario.__new__(Scenario)
        clone._fields = {**self._fields, **changes}
        clone._engine_pinned = self._engine_pinned
        return clone

    # -- machine shape ------------------------------------------------------
    def tasks(self, n_tasks: int, cores_per_node: int | None = None) -> "Scenario":
        """An ``n_tasks``-task job (optionally setting cores per node)."""
        changes: dict[str, object] = {"n_tasks": n_tasks}
        if cores_per_node is not None:
            changes["cores_per_node"] = cores_per_node
        return self._with(**changes)

    def nodes(self, n_nodes: int) -> "Scenario":
        """An ``n_nodes``-node job, one rank per node (the scale-study
        shape: every node pays the cold path)."""
        return self._with(n_tasks=n_nodes, cores_per_node=1)

    def os_profile(self, name: str) -> "Scenario":
        """Default OS profile by registry name."""
        return self._with(os_profile=name)

    # -- library set --------------------------------------------------------
    def config(self, config: PynamicConfig) -> "Scenario":
        """Replace the generated library set."""
        return self._with(config=config)

    def library_set(self, **changes: object) -> "Scenario":
        """Tweak fields of the current library config
        (``.library_set(n_modules=8, avg_functions=30)``)."""
        current = self._fields["config"]
        return self._with(config=replace(current, **changes))  # type: ignore[arg-type]

    def seed(self, seed: int) -> "Scenario":
        """Set the benchmark generator seed."""
        return self.library_set(seed=seed)

    # -- engine and build ---------------------------------------------------
    def engine(self, engine: str) -> "Scenario":
        """Pin the job engine (disables auto-selection)."""
        clone = self._with(engine=engine)
        clone._engine_pinned = True
        return clone

    def mode(self, mode: "BuildMode | str") -> "Scenario":
        """Build mode, as a :class:`BuildMode` or its string value."""
        if isinstance(mode, str):
            try:
                mode = BuildMode(mode)
            except ValueError:
                values = sorted(member.value for member in BuildMode)
                raise ConfigError(
                    f"mode: unknown build mode {mode!r}; choose from {values}"
                ) from None
        return self._with(mode=mode)

    def hash_style(self, style: "HashStyle | str") -> "Scenario":
        """ELF hash style, as a :class:`HashStyle` or its string value."""
        if isinstance(style, str):
            try:
                style = HashStyle(style)
            except ValueError:
                values = sorted(member.value for member in HashStyle)
                raise ConfigError(
                    f"hash_style: unknown style {style!r}; choose from {values}"
                ) from None
        return self._with(hash_style=style)

    def prelink(self, enabled: bool = True) -> "Scenario":
        """Pre-resolve relocations at build time."""
        return self._with(prelink=enabled)

    # -- warm mix -----------------------------------------------------------
    def warm(self, enabled: bool = True) -> "Scenario":
        """Start every node's buffer cache warm."""
        return self._with(warm_file_cache=enabled)

    def warm_fraction(self, fraction: float) -> "Scenario":
        """Fraction of nodes whose caches start warm (multirank)."""
        return self._with(warm_fraction=fraction)

    def warm_nodes(self, *nodes: int) -> "Scenario":
        """Explicit warm node indices (multirank)."""
        return self._with(warm_nodes=tuple(nodes))

    # -- heterogeneity ------------------------------------------------------
    def stragglers(self, *nodes: int, slowdown: float | None = None) -> "Scenario":
        """Throttle the listed nodes (optionally setting the divisor)."""
        changes: dict[str, object] = {"straggler_nodes": tuple(nodes)}
        if slowdown is not None:
            changes["straggler_slowdown"] = slowdown
        return self._with(**changes)

    def jitter(self, os_jitter_s: float) -> "Scenario":
        """Per-rank OS-noise launch jitter upper bound."""
        return self._with(os_jitter_s=os_jitter_s)

    def node_os_profile(self, node: int, name: str) -> "Scenario":
        """Override one node's OS profile by registry name."""
        current = dict(self._fields["node_os_profiles"])  # type: ignore[call-overload]
        current[node] = name
        return self._with(node_os_profiles=tuple(sorted(current.items())))

    # -- distribution overlay -----------------------------------------------
    def distribution(
        self, spec: "DistributionSpec | str | None", **kwargs: object
    ) -> "Scenario":
        """Attach a library-distribution overlay.

        Accepts a :class:`DistributionSpec`, a CLI-style name
        (``"binomial"``, ``"kary"``, ``"flat"``, ``"pfs"``, ``"none"``)
        with :meth:`DistributionSpec.from_name` keywords, or ``None`` to
        remove the overlay.
        """
        if isinstance(spec, str):
            spec = DistributionSpec.from_name(spec, **kwargs)  # type: ignore[arg-type]
        elif kwargs:
            raise ConfigError(
                "distribution: keyword arguments only apply when the "
                "overlay is given by name"
            )
        return self._with(distribution=spec)

    def fanout(self, fanout: int) -> "Scenario":
        """Fan-out degree of the overlay tree (defaults to a k-ary
        overlay when none is attached yet)."""
        current = self._fields["distribution"]
        if current is None:
            current = DistributionSpec(topology=Topology.KARY, fanout=fanout)
        else:
            current = replace(current, fanout=fanout)  # type: ignore[arg-type]
        return self._with(distribution=current)

    def pipelined(self, chunk_bytes: "int | None | object" = _UNSET) -> "Scenario":
        """Chunked cut-through relaying on the overlay (attaching the
        default binomial broadcast when none is set yet).

        ``chunk_bytes`` sets the relay granularity; when not passed,
        an existing overlay's granularity is left untouched (an
        explicit ``chunk_bytes=None`` selects whole-image relaying).
        """
        current = self._fields["distribution"]
        if current is None:
            current = DistributionSpec(topology=Topology.BINOMIAL)
        changes: dict[str, object] = {"pipelined": True}
        if chunk_bytes is not _UNSET:
            changes["chunk_bytes"] = chunk_bytes
        return self._with(
            distribution=replace(current, **changes)  # type: ignore[arg-type]
        )

    # -- fault injection ----------------------------------------------------
    def faults(self, spec: "FaultSpec | None") -> "Scenario":
        """Attach a :class:`repro.faults.FaultSpec` (or ``None`` to
        remove it).  An empty spec normalizes away at build time, so the
        fault-free twin of a faulted chain hashes identically."""
        return self._with(faults=spec)

    # -- materialization ----------------------------------------------------
    def _needs_multirank(self) -> bool:
        f: Mapping[str, object] = self._fields
        faults = f["faults"]
        return bool(
            f["distribution"] is not None
            or f["straggler_nodes"]
            or f["warm_nodes"]
            or f["node_os_profiles"]
            or f["os_jitter_s"]
            or f["warm_fraction"]
            or (faults is not None and not faults.empty)  # type: ignore[attr-defined]
        )

    def build(self) -> ScenarioSpec:
        """Materialize (and validate) the :class:`ScenarioSpec`."""
        fields_ = dict(self._fields)
        if not self._engine_pinned and self._needs_multirank():
            fields_["engine"] = "multirank"
        return ScenarioSpec(**fields_)  # type: ignore[arg-type]

    def run(self) -> "object":
        """Build the spec and simulate it (returns the JobReport)."""
        from repro.scenario.run import simulate

        return simulate(self.build())

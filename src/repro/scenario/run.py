"""The one entry point: ``simulate(spec) -> JobReport``.

Every layer consumes the same :class:`ScenarioSpec`; this module is the
thin bridge from the declarative value to the engines.  It is a plain
top-level function of one picklable argument, so the sweep runner can
fan calls out across worker processes directly.

``simulate(spec, cache_dir=...)`` routes the single point through the
sweep runner's disk layer — the SQLite results warehouse
(:mod:`repro.results`) — so a one-off job (the CLI's ``job
--cache-dir``) shares cache entries with every sweep that evaluated
the same canonical spec hash, and its report lands in the warehouse
for ``results query``.
"""

from __future__ import annotations

from repro.scenario.spec import ScenarioSpec


def simulate(
    spec: ScenarioSpec,
    cache_dir: "str | None" = None,
    runner: "object | None" = None,
) -> "object":
    """Run one scenario with its declared engine; returns a
    :class:`repro.core.job.JobReport`.

    With ``cache_dir`` (or an explicit :class:`SweepRunner` via
    ``runner``) the point is memoized through the results warehouse
    under its canonical spec hash — a warm entry replays instead of
    re-simulating.
    """
    if cache_dir is None and runner is None:
        from repro.core.job import PynamicJob

        return PynamicJob.from_scenario(spec).run()
    from repro.harness.sweep import SweepRunner, sweep_scenarios

    if runner is None:
        runner = SweepRunner(workers=1, cache_dir=cache_dir)
    return sweep_scenarios([spec], runner=runner)[0]

"""The one entry point: ``simulate(spec) -> JobReport``.

Every layer consumes the same :class:`ScenarioSpec`; this module is the
thin bridge from the declarative value to the engines.  It is a plain
top-level function of one picklable argument, so the sweep runner can
fan calls out across worker processes directly.
"""

from __future__ import annotations

from repro.scenario.spec import ScenarioSpec


def simulate(spec: ScenarioSpec) -> "object":
    """Run one scenario with its declared engine; returns a
    :class:`repro.core.job.JobReport`."""
    from repro.core.job import PynamicJob

    return PynamicJob.from_scenario(spec).run()

"""The simulated cycle clock.

Each node advances an integer cycle counter; seconds are derived at the
node's clock frequency.  Phase timers (:mod:`repro.perf.timers`) read this
clock the way the Pynamic driver reads ``time.time()``.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.units import DEFAULT_FREQUENCY_HZ


class SimClock:
    """Monotonic simulated clock counting CPU cycles."""

    def __init__(self, frequency_hz: int = DEFAULT_FREQUENCY_HZ) -> None:
        if frequency_hz <= 0:
            raise ConfigError(f"frequency must be positive, got {frequency_hz}")
        self.frequency_hz = frequency_hz
        self.cycles = 0

    def add_cycles(self, cycles: int) -> None:
        """Advance the clock by a non-negative number of cycles."""
        if cycles < 0:
            raise ConfigError(f"cannot add negative cycles: {cycles}")
        self.cycles += cycles

    def add_seconds(self, seconds: float) -> None:
        """Advance the clock by a wall-clock duration."""
        if seconds < 0:
            raise ConfigError(f"cannot add negative seconds: {seconds}")
        self.cycles += round(seconds * self.frequency_hz)

    def advance_to(self, cycles: int) -> None:
        """Move the clock forward to an absolute cycle count (never back)."""
        if cycles > self.cycles:
            self.cycles = cycles

    def advance_to_seconds(self, seconds: float) -> None:
        """Move the clock forward to an absolute time (never back).

        Rounds up to the next whole cycle so ``self.seconds`` never reads
        earlier than the requested instant — the invariant blocking
        receives (wait until a message's arrival time) rely on.
        """
        if seconds < 0:
            raise ConfigError(f"cannot advance to negative time: {seconds}")
        self.advance_to(math.ceil(seconds * self.frequency_hz))

    @property
    def seconds(self) -> float:
        """Current simulated time in seconds."""
        return self.cycles / float(self.frequency_hz)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock({self.cycles} cy = {self.seconds:.6f} s)"

"""The execution context: the single funnel for all simulated costs.

Every component that "executes" — the dynamic linker resolving a symbol,
the pager servicing a fault, a generated function body running — does so
through an :class:`ExecutionContext`.  The context charges instruction
work to the node clock, routes memory accesses through the cache
hierarchy, and services page faults via the buffer cache, so that cost
attribution (the essence of Tables I and II) is automatic.
"""

from __future__ import annotations

from repro.cache.hierarchy import AccessKind
from repro.machine.node import Node, Process


class ExecutionContext:
    """Charges a process's execution costs to its node."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self.node: Node = process.node
        self.costs = self.node.costs
        self._hierarchy = self.node.hierarchy
        self._clock = self.node.clock
        self._aspace = process.address_space
        #: Total bytes read by major page faults (for reports/tests).
        self.major_fault_bytes = 0
        self.minor_faults = 0
        self.major_faults = 0

    # -- instruction work -------------------------------------------------
    def work(self, instructions: int | float) -> None:
        """Execute ``instructions`` of already-cached straight-line code."""
        self._clock.add_cycles(self.costs.instructions_to_cycles(instructions))

    def stall_seconds(self, seconds: float) -> None:
        """Block for a wall-clock duration (IO waits, launcher latency)."""
        self._clock.add_seconds(seconds)

    # -- memory accesses ---------------------------------------------------
    def _touch(self, address: int, size: int) -> None:
        faults = self._aspace.touch(address, size)
        if not faults:
            return
        page_bytes = self._aspace.page_bytes
        # An earlier fault's read-ahead window may cover later faults in
        # the same touched range; track coverage to avoid double-charging.
        covered: dict[int, int] = {}  # id(mapping) -> covered-until address
        for fault in faults:
            if fault.is_major and covered.get(id(fault.mapping), -1) >= fault.page_address:
                continue
            self._clock.add_cycles(self.costs.minor_fault_cycles)
            if not fault.is_major:
                self.minor_faults += 1
                continue
            mapping = fault.mapping
            window = min(
                self.costs.readahead_bytes,
                mapping.end - fault.page_address,
            )
            window = max(window, page_bytes)
            image, offset, _ = fault.file_range(page_bytes)
            nbytes = min(window, image.size_bytes - offset)
            if nbytes > 0 and self.node.buffer_cache.contains(image, offset, nbytes):
                # Soft fault: the file data already sit in the page cache,
                # so servicing is just mapping the existing page.
                self.minor_faults += 1
            elif nbytes > 0:
                self.major_faults += 1
                self._clock.add_cycles(self.costs.major_fault_extra_cycles)
                self.node.read_file(image, offset, nbytes)
                self.major_fault_bytes += nbytes
            self._aspace.mark_range_present(fault.page_address, window)
            covered[id(mapping)] = fault.page_address + window - 1

    def ifetch(self, address: int, size: int) -> None:
        """Fetch instruction bytes (L1I path)."""
        self._touch(address, size)
        penalty = self._hierarchy.access(address, size, AccessKind.INSTRUCTION)
        if penalty:
            self._clock.add_cycles(penalty)

    def dread(self, address: int, size: int) -> None:
        """Read data bytes (L1D path)."""
        self._touch(address, size)
        penalty = self._hierarchy.access(address, size, AccessKind.DATA_READ)
        if penalty:
            self._clock.add_cycles(penalty)

    def dwrite(self, address: int, size: int) -> None:
        """Write data bytes (write-allocate L1D path)."""
        self._touch(address, size)
        penalty = self._hierarchy.access(address, size, AccessKind.DATA_WRITE)
        if penalty:
            self._clock.add_cycles(penalty)

    # -- convenience -------------------------------------------------------
    @property
    def seconds(self) -> float:
        """Current node time in seconds."""
        return self._clock.seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionContext(pid={self.process.pid}, t={self.seconds:.6f}s)"

"""The stepped-execution layer: discrete-event scheduling of virtual clocks.

Every consumer of a per-entity virtual clock — the multi-rank job engine
(:mod:`repro.core.multirank`), the stepped dynamic-linker startup
(:meth:`DynamicLinker.start_program_steps`), the multirank parallel
debugger (:mod:`repro.tools.debugger`) — expresses its work as a
:class:`SteppedProgram`: a resumable generator of fine-grained steps.  The
:class:`EventScheduler` interleaves those generators on a shared virtual
timeline with a *least-virtual-time-first* policy: the entity whose clock
is furthest behind always runs its next step.  Shared-resource requests
(NFS reads through the timed queueing interface) are therefore issued in
approximately nondecreasing virtual time, which is what lets contention,
queueing delay and inter-rank skew *emerge* from the model instead of
being charged as closed-form corrections.

The approximation: a step is atomic, so a long step can advance one rank
past a peer that then issues an earlier-timestamped request.  The timed
file-system queues tolerate this (service never begins before the request's
own start time), and consumers keep steps fine-grained — one shared object
mapped, one module imported, one module visited per step — so the
reordering window stays small.
"""

from __future__ import annotations

import gc
import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Generator, Sequence, TypeVar

from repro.errors import ConfigError

_T = TypeVar("_T")


@dataclass(frozen=True)
class EngineStats:
    """Counters describing one engine run, attached to a ``JobReport``.

    ``ranks_simulated`` tasks were actually stepped; ``ranks_coalesced``
    rode a representative's simulation (warm-batch replicas and per-node
    lockstep coalescing) — their sum is the job's rank count.  The
    timeline figures aggregate the shared file-system reservation
    structures after the run: ``bookings`` counts every window ever
    booked, ``windows`` what remained stored after adjacent-window
    merging.
    """

    scheduler_steps: int
    tasks_completed: int
    ranks_simulated: int
    ranks_coalesced: int
    nfs_timeline_windows: int
    nfs_timeline_bookings: int
    pfs_timeline_windows: int
    pfs_timeline_bookings: int


class Mailbox:
    """Timestamped messages between stepped programs on one scheduler.

    A sender *delivers* a payload with the virtual time at which it
    arrives; the receiver *receives* messages in arrival order, advancing
    its own clock to the arrival time.  Because the scheduler interleaves
    tasks least-virtual-time-first, a receiver whose mailbox is empty
    simply yields (its ``now`` callable should then report a time at or
    after its sender's clock, so the sender runs first) and re-checks on
    its next step — the blocking-receive idiom the distribution overlay's
    relay daemons use.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, object]] = []
        self._seq = itertools.count()

    def deliver(self, arrival_s: float, payload: object) -> None:
        """Enqueue ``payload`` arriving at virtual time ``arrival_s``."""
        if arrival_s < 0:
            raise ConfigError(f"negative arrival time: {arrival_s}")
        heapq.heappush(self._heap, (arrival_s, next(self._seq), payload))

    def peek_arrival(self) -> float | None:
        """Arrival time of the earliest queued message (None if empty)."""
        return self._heap[0][0] if self._heap else None

    def receive(self) -> tuple[float, object] | None:
        """Pop the earliest message as ``(arrival_s, payload)``, or None."""
        if not self._heap:
            return None
        arrival, _, payload = heapq.heappop(self._heap)
        return arrival, payload

    def __len__(self) -> int:
        return len(self._heap)


class SteppedProgram:
    """A unit of per-entity work runnable one fine-grained step at a time.

    Implementations expose :meth:`steps`, a generator that yields after
    each unit of work (one object mapped, one module imported, one DLL's
    debug sections parsed).  Anything holding a ``SteppedProgram`` can
    either interleave it on an :class:`EventScheduler` (via
    :meth:`RankTask.from_program`) or run it to completion inline with
    :func:`drain` — the two paths charge identical costs, which is what
    keeps the analytic fast paths validated against the stepped ones.
    """

    def steps(self) -> Generator[None, None, None]:
        """Yield after each unit of work."""
        raise NotImplementedError


def drain(steps: Generator[None, None, _T]) -> _T:
    """Run a step generator to completion; returns its return value.

    The inline twin of scheduling the generator as a :class:`RankTask`:
    monolithic wrappers (``DynamicLinker.start_program``) drain the same
    generator the scheduler would interleave, so the stepped and atomic
    paths cannot drift apart.
    """
    while True:
        try:
            next(steps)
        except StopIteration as stop:
            return stop.value


class RankTask:
    """One rank's execution: a generator of steps plus its clock reading.

    ``steps`` yields after each unit of work (launch, program start, one
    module import, one module visit); ``now`` reports the rank's current
    virtual time so the scheduler can order resumptions.

    ``multiplicity`` is the number of ranks this task stands for: a
    coalesced task — one representative standing for several co-resident
    ranks — is stepped once but weighs ``multiplicity`` in the
    scheduler's ``ranks_completed`` accounting.
    """

    def __init__(
        self,
        rank: int,
        steps: Generator[None, None, None],
        now: Callable[[], float],
        multiplicity: int = 1,
    ) -> None:
        if multiplicity < 1:
            raise ConfigError(
                f"task multiplicity must be >= 1, got {multiplicity}"
            )
        self.rank = rank
        self._steps = steps
        self._now = now
        self.multiplicity = multiplicity
        self.done = False
        self.steps_run = 0

    @classmethod
    def from_program(
        cls, rank: int, program: SteppedProgram, now: Callable[[], float]
    ) -> "RankTask":
        """Wrap a :class:`SteppedProgram` for the scheduler."""
        return cls(rank, program.steps(), now)

    @property
    def now(self) -> float:
        """The rank's current virtual time in seconds."""
        return self._now()

    def step(self) -> bool:
        """Run one step; returns False once the rank has finished."""
        if self.done:
            return False
        try:
            next(self._steps)
        except StopIteration:
            self.done = True
            return False
        self.steps_run += 1
        return True


class EventScheduler:
    """Least-virtual-time-first cooperative scheduler over rank tasks.

    The counters (``steps_run``, ``tasks_completed``,
    ``ranks_completed``) *accumulate across* :meth:`run` calls on the
    same scheduler instance — an engine that runs several phases on one
    scheduler reads job totals at the end.  Call :meth:`reset_stats` to
    start a fresh measurement window without constructing a new
    scheduler.  ``ranks_completed`` weighs each completed task by its
    :attr:`RankTask.multiplicity`, so coalesced representatives count
    every rank they stand for.
    """

    def __init__(self) -> None:
        self.steps_run = 0
        self.tasks_completed = 0
        self.ranks_completed = 0

    def reset_stats(self) -> None:
        """Zero the accumulated counters (the scheduler itself is
        stateless between runs — only the statistics persist)."""
        self.steps_run = 0
        self.tasks_completed = 0
        self.ranks_completed = 0

    def run(self, tasks: Sequence[RankTask]) -> None:
        """Interleave every task to completion on the shared timeline.

        Ties on virtual time break by rank index, so a run is fully
        deterministic for a given task list.
        """
        if not tasks:
            raise ConfigError("scheduler needs at least one task")
        heap: list[tuple[float, int, RankTask]] = [
            (task.now, task.rank, task) for task in tasks
        ]
        heapq.heapify(heap)
        # The pop/step/push cycle runs once per step of every task on the
        # timeline — inline ``RankTask.step`` and keep the counters local
        # (flushed even if a task raises) to cut per-step overhead.
        # Cyclic GC is paused for the duration: an event loop allocating
        # millions of short-lived heap entries while the live population
        # (resident cache pages, landed maps) keeps growing makes the
        # collector rescan the whole heap over and over for nothing —
        # measured at ~a third of a large staging run's wall time.  Any
        # cycles the run creates are collected after it returns.
        heappop, heappush = heapq.heappop, heapq.heappush
        steps_run = 0
        completed = 0
        ranks = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                _, rank, task = heappop(heap)
                steps_run += 1
                try:
                    next(task._steps)
                except StopIteration:
                    task.done = True
                    completed += 1
                    ranks += task.multiplicity
                else:
                    task.steps_run += 1
                    heappush(heap, (task._now(), rank, task))
        finally:
            if gc_was_enabled:
                gc.enable()
            self.steps_run += steps_run
            self.tasks_completed += completed
            self.ranks_completed += ranks

"""Discrete-event scheduling of per-rank virtual clocks.

The multi-rank job engine (:mod:`repro.core.multirank`) gives every
simulated MPI rank its own clock and runs each rank's work as a resumable
generator.  The :class:`EventScheduler` interleaves those generators on a
shared virtual timeline with a *least-virtual-time-first* policy: the rank
whose clock is furthest behind always runs its next step.  Shared-resource
requests (NFS reads through the timed queueing interface) are therefore
issued in approximately nondecreasing virtual time, which is what lets
contention, queueing delay and inter-rank skew *emerge* from the model
instead of being charged as closed-form corrections.

The approximation: a step is atomic, so a long step can advance one rank
past a peer that then issues an earlier-timestamped request.  The timed
file-system queues tolerate this (service never begins before the request's
own start time), and the engine keeps steps fine-grained — one module
import or visit per step — so the reordering window stays small.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Sequence

from repro.errors import ConfigError


class RankTask:
    """One rank's execution: a generator of steps plus its clock reading.

    ``steps`` yields after each unit of work (launch, program start, one
    module import, one module visit); ``now`` reports the rank's current
    virtual time so the scheduler can order resumptions.
    """

    def __init__(
        self,
        rank: int,
        steps: Generator[None, None, None],
        now: Callable[[], float],
    ) -> None:
        self.rank = rank
        self._steps = steps
        self._now = now
        self.done = False
        self.steps_run = 0

    @property
    def now(self) -> float:
        """The rank's current virtual time in seconds."""
        return self._now()

    def step(self) -> bool:
        """Run one step; returns False once the rank has finished."""
        if self.done:
            return False
        try:
            next(self._steps)
        except StopIteration:
            self.done = True
            return False
        self.steps_run += 1
        return True


class EventScheduler:
    """Least-virtual-time-first cooperative scheduler over rank tasks."""

    def __init__(self) -> None:
        self.steps_run = 0
        self.tasks_completed = 0

    def run(self, tasks: Sequence[RankTask]) -> None:
        """Interleave every task to completion on the shared timeline.

        Ties on virtual time break by rank index, so a run is fully
        deterministic for a given task list.
        """
        if not tasks:
            raise ConfigError("scheduler needs at least one task")
        heap: list[tuple[float, int, RankTask]] = [
            (task.now, task.rank, task) for task in tasks
        ]
        heapq.heapify(heap)
        while heap:
            _, rank, task = heapq.heappop(heap)
            self.steps_run += 1
            if task.step():
                heapq.heappush(heap, (task.now, rank, task))
            else:
                self.tasks_completed += 1

"""The stepped-execution layer: discrete-event scheduling of virtual clocks.

Every consumer of a per-entity virtual clock — the multi-rank job engine
(:mod:`repro.core.multirank`), the stepped dynamic-linker startup
(:meth:`DynamicLinker.start_program_steps`), the multirank parallel
debugger (:mod:`repro.tools.debugger`) — expresses its work as a
:class:`SteppedProgram`: a resumable generator of fine-grained steps.  The
:class:`EventScheduler` interleaves those generators on a shared virtual
timeline with a *least-virtual-time-first* policy: the entity whose clock
is furthest behind always runs its next step.  Shared-resource requests
(NFS reads through the timed queueing interface) are therefore issued in
approximately nondecreasing virtual time, which is what lets contention,
queueing delay and inter-rank skew *emerge* from the model instead of
being charged as closed-form corrections.

The approximation: a step is atomic, so a long step can advance one rank
past a peer that then issues an earlier-timestamped request.  The timed
file-system queues tolerate this (service never begins before the request's
own start time), and consumers keep steps fine-grained — one shared object
mapped, one module imported, one module visited per step — so the
reordering window stays small.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generator, Sequence, TypeVar

from repro.errors import ConfigError

_T = TypeVar("_T")


class Mailbox:
    """Timestamped messages between stepped programs on one scheduler.

    A sender *delivers* a payload with the virtual time at which it
    arrives; the receiver *receives* messages in arrival order, advancing
    its own clock to the arrival time.  Because the scheduler interleaves
    tasks least-virtual-time-first, a receiver whose mailbox is empty
    simply yields (its ``now`` callable should then report a time at or
    after its sender's clock, so the sender runs first) and re-checks on
    its next step — the blocking-receive idiom the distribution overlay's
    relay daemons use.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, object]] = []
        self._seq = itertools.count()

    def deliver(self, arrival_s: float, payload: object) -> None:
        """Enqueue ``payload`` arriving at virtual time ``arrival_s``."""
        if arrival_s < 0:
            raise ConfigError(f"negative arrival time: {arrival_s}")
        heapq.heappush(self._heap, (arrival_s, next(self._seq), payload))

    def peek_arrival(self) -> float | None:
        """Arrival time of the earliest queued message (None if empty)."""
        return self._heap[0][0] if self._heap else None

    def receive(self) -> tuple[float, object] | None:
        """Pop the earliest message as ``(arrival_s, payload)``, or None."""
        if not self._heap:
            return None
        arrival, _, payload = heapq.heappop(self._heap)
        return arrival, payload

    def __len__(self) -> int:
        return len(self._heap)


class SteppedProgram:
    """A unit of per-entity work runnable one fine-grained step at a time.

    Implementations expose :meth:`steps`, a generator that yields after
    each unit of work (one object mapped, one module imported, one DLL's
    debug sections parsed).  Anything holding a ``SteppedProgram`` can
    either interleave it on an :class:`EventScheduler` (via
    :meth:`RankTask.from_program`) or run it to completion inline with
    :func:`drain` — the two paths charge identical costs, which is what
    keeps the analytic fast paths validated against the stepped ones.
    """

    def steps(self) -> Generator[None, None, None]:
        """Yield after each unit of work."""
        raise NotImplementedError


def drain(steps: Generator[None, None, _T]) -> _T:
    """Run a step generator to completion; returns its return value.

    The inline twin of scheduling the generator as a :class:`RankTask`:
    monolithic wrappers (``DynamicLinker.start_program``) drain the same
    generator the scheduler would interleave, so the stepped and atomic
    paths cannot drift apart.
    """
    while True:
        try:
            next(steps)
        except StopIteration as stop:
            return stop.value


class RankTask:
    """One rank's execution: a generator of steps plus its clock reading.

    ``steps`` yields after each unit of work (launch, program start, one
    module import, one module visit); ``now`` reports the rank's current
    virtual time so the scheduler can order resumptions.
    """

    def __init__(
        self,
        rank: int,
        steps: Generator[None, None, None],
        now: Callable[[], float],
    ) -> None:
        self.rank = rank
        self._steps = steps
        self._now = now
        self.done = False
        self.steps_run = 0

    @classmethod
    def from_program(
        cls, rank: int, program: SteppedProgram, now: Callable[[], float]
    ) -> "RankTask":
        """Wrap a :class:`SteppedProgram` for the scheduler."""
        return cls(rank, program.steps(), now)

    @property
    def now(self) -> float:
        """The rank's current virtual time in seconds."""
        return self._now()

    def step(self) -> bool:
        """Run one step; returns False once the rank has finished."""
        if self.done:
            return False
        try:
            next(self._steps)
        except StopIteration:
            self.done = True
            return False
        self.steps_run += 1
        return True


class EventScheduler:
    """Least-virtual-time-first cooperative scheduler over rank tasks."""

    def __init__(self) -> None:
        self.steps_run = 0
        self.tasks_completed = 0

    def run(self, tasks: Sequence[RankTask]) -> None:
        """Interleave every task to completion on the shared timeline.

        Ties on virtual time break by rank index, so a run is fully
        deterministic for a given task list.
        """
        if not tasks:
            raise ConfigError("scheduler needs at least one task")
        heap: list[tuple[float, int, RankTask]] = [
            (task.now, task.rank, task) for task in tasks
        ]
        heapq.heapify(heap)
        while heap:
            _, rank, task = heapq.heappop(heap)
            self.steps_run += 1
            if task.step():
                heapq.heappush(heap, (task.now, rank, task))
            else:
                self.tasks_completed += 1

"""A cluster of nodes sharing file systems — the simulated Zeus.

Zeus (Section IV) is a 288-node InfiniBand cluster with 8 Opteron cores per
node.  A :class:`Cluster` creates homogeneous nodes wired to a shared
:class:`NFSServer` (where DLLs are staged) and a
:class:`ParallelFileSystem`, and provides the barrier/synchronization
helpers that MPI jobs and the parallel debugger need.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.fs.files import FileStore
from repro.fs.nfs import NFSServer
from repro.fs.parallelfs import ParallelFileSystem
from repro.machine.costs import CostModel
from repro.machine.node import Node


class Cluster:
    """Homogeneous nodes plus shared storage."""

    def __init__(
        self,
        n_nodes: int = 1,
        cores_per_node: int = 8,
        costs: CostModel | None = None,
        nfs: NFSServer | None = None,
        pfs: ParallelFileSystem | None = None,
    ) -> None:
        if n_nodes < 1 or cores_per_node < 1:
            raise ConfigError("cluster needs at least one node and core")
        self.costs = costs or CostModel()
        self.nfs = nfs or NFSServer()
        self.pfs = pfs or ParallelFileSystem()
        self.file_store = FileStore()
        self.nodes = [
            Node(name=f"node{i}", costs=self.costs, cores=cores_per_node)
            for i in range(n_nodes)
        ]
        self._total_cores = n_nodes * cores_per_node

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        """Total cores across the cluster (cached: per-rank loops call
        :meth:`validate_job_size` via :meth:`node_for_rank`)."""
        return self._total_cores

    def validate_job_size(self, n_tasks: int) -> None:
        """Reject jobs that do not fit the cluster's cores.

        srun refuses to oversubscribe without an explicit flag; silently
        packing extra ranks onto cores would skew every per-rank time, so
        the simulator refuses too.
        """
        if n_tasks < 1:
            raise ConfigError(f"need at least one task, got {n_tasks}")
        if n_tasks > self.total_cores:
            raise ConfigError(
                f"{n_tasks} tasks do not fit {self.n_nodes} nodes x "
                f"{self.nodes[0].cores} cores ({self.total_cores} cores total); "
                f"grow the cluster or shrink the job"
            )

    def node_for_rank(self, rank: int, n_tasks: int) -> Node:
        """Block placement of MPI ranks onto nodes.

        Ranks fill each node up to its core count first (srun-style block
        placement).  Jobs larger than the cluster's core count are
        rejected with a :class:`ConfigError`.
        """
        self.validate_job_size(n_tasks)
        if not 0 <= rank < n_tasks:
            raise ConfigError(f"rank {rank} out of range for {n_tasks} tasks")
        index = rank // self.nodes[0].cores
        return self.nodes[index]

    def nodes_for_job(self, n_tasks: int) -> list[Node]:
        """The distinct nodes a job of ``n_tasks`` ranks occupies."""
        seen: list[Node] = []
        for rank in range(n_tasks):
            node = self.node_for_rank(rank, n_tasks)
            if node not in seen:
                seen.append(node)
        return seen

    def barrier(self, nodes: list[Node] | None = None) -> float:
        """Synchronize node clocks to the latest participant.

        Returns the synchronized time in seconds.  This is how SPMD phases
        (and the debugger's stop-the-world updates) are aligned.
        """
        participants = nodes if nodes is not None else self.nodes
        if not participants:
            raise ConfigError("barrier over an empty node set")
        latest = max(node.clock.cycles for node in participants)
        for node in participants:
            node.clock.advance_to(latest)
        return participants[0].clock.seconds

    def drop_buffer_caches(self) -> None:
        """Evict every node's buffer cache (model a cold first invocation)."""
        for node in self.nodes:
            node.buffer_cache.drop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({self.n_nodes} nodes x {self.nodes[0].cores} cores)"


class ClusterSlice:
    """One job's view of a shared cluster: a node subset, shared storage.

    A batch-queue allocation carves ``node_indices`` out of a parent
    :class:`Cluster` while the NFS server, parallel file system and file
    store stay the *parent's* — so every job scheduled onto the same
    cluster books reservations on one shared set of filesystem timelines
    and cross-job contention emerges instead of being modeled per job.
    The slice quacks like a :class:`Cluster` for the consumers a job
    needs (the multirank engine, the distribution overlay, MPI
    sessions): ``nodes[i]`` is the job's *local* node ``i``.
    """

    def __init__(self, cluster: Cluster, node_indices: "list[int] | tuple[int, ...] | range") -> None:
        indices = list(node_indices)
        if not indices:
            raise ConfigError("a cluster slice needs at least one node")
        if len(set(indices)) != len(indices):
            raise ConfigError(f"duplicate node indices in slice: {indices}")
        for index in indices:
            if not 0 <= index < cluster.n_nodes:
                raise ConfigError(
                    f"slice node {index} outside the {cluster.n_nodes}-node "
                    f"cluster"
                )
        self.parent = cluster
        self.node_indices = tuple(indices)
        self.nodes = [cluster.nodes[index] for index in indices]
        self.costs = cluster.costs
        self.nfs = cluster.nfs
        self.pfs = cluster.pfs
        self.file_store = cluster.file_store

    @property
    def n_nodes(self) -> int:
        """Nodes in the slice (the job's local node count)."""
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        """Total cores across the slice."""
        return sum(node.cores for node in self.nodes)

    def validate_job_size(self, n_tasks: int) -> None:
        """Reject jobs that do not fit the slice's cores (srun refuses
        to oversubscribe; so does the simulator)."""
        if n_tasks < 1:
            raise ConfigError(f"need at least one task, got {n_tasks}")
        if n_tasks > self.total_cores:
            raise ConfigError(
                f"{n_tasks} tasks do not fit the {self.n_nodes}-node slice "
                f"({self.total_cores} cores total)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterSlice({self.n_nodes} of {self.parent.n_nodes} nodes: "
            f"{self.node_indices})"
        )

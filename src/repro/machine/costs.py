"""The calibration surface: every tunable cost constant, in one place.

The paper measured wall-clock seconds and hardware cache-miss counters on a
2007 Opteron cluster.  Our substrate replaces that hardware with a cost
model; this module is the *only* place where magic numbers live, each with
the paper observation that motivates it.  Benchmarks never assert absolute
equality with the paper — only orderings and coarse ratios — so these
defaults aim for mechanism fidelity first and magnitude plausibility second.

Calibration notes
-----------------
* ``l2_hit_penalty`` / ``memory_penalty`` are *effective* (amortized)
  penalties, far below raw DRAM latency: Table I/II imply ~41M L1-D misses
  per second during the Vanilla import, which is only consistent with
  substantial memory-level parallelism in the resolver's pointer chasing.
* The dynamic-linker constants model glibc's ``_dl_lookup_symbol`` walking
  the search scope object-by-object, probing each object's SysV hash table;
  ``dlopen_relookup_fraction`` models the "general inefficiency in the
  LINUX dlopen implementation when it deals with pre-linked shared
  objects" the paper reports (import of pre-linked DSOs was only ~3x
  faster than a full Vanilla import, not ~free).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import DEFAULT_FREQUENCY_HZ


@dataclass(frozen=True)
class CostModel:
    """All simulation cost constants (cycles unless suffixed otherwise)."""

    # --- core ---------------------------------------------------------
    #: Clock frequency of a Zeus Opteron core (Section IV: 2.4 GHz).
    frequency_hz: int = DEFAULT_FREQUENCY_HZ
    #: Cycles per "work" instruction (IPC of 1 on the in-order model).
    cycles_per_instruction: float = 1.0
    #: Effective extra cycles for an L1 miss that hits in L2.
    l2_hit_penalty: int = 25
    #: Effective extra cycles for an access that misses to memory.
    memory_penalty: int = 150

    # --- virtual memory ------------------------------------------------
    #: Page size used by the pager and buffer caches.
    page_bytes: int = 4096
    #: Kernel overhead of any page fault (trap, PTE fill, TLB refill).
    minor_fault_cycles: int = 3_000
    #: Extra kernel overhead of a file-backed (major) fault, on top of the
    #: buffer-cache/NFS read time charged separately.
    major_fault_extra_cycles: int = 9_000
    #: Kernel read-ahead window: a major fault reads this much of the
    #: mapping in one request (amortizing per-request file-system latency).
    readahead_bytes: int = 128 * 1024

    # --- dynamic linker --------------------------------------------------
    #: Fixed instructions for a dlopen of a not-yet-loaded object (path
    #: resolution, fd open, program-header parse).
    dlopen_base_instructions: int = 30_000
    #: Instructions to create/initialize one link-map entry.
    linkmap_entry_instructions: int = 2_000
    #: Per-object instructions when dlopen re-verifies an already-loaded
    #: object (soname compare, dependency walk) — the observed glibc
    #: inefficiency with pre-linked shared objects.
    dlopen_reverify_per_object_instructions: int = 400
    #: Fraction of a full symbol-resolution pass that the re-verification
    #: of a pre-linked object performs (version/presence checks that walk
    #: hash tables without writing the GOT).
    dlopen_relookup_fraction: float = 0.32
    #: Fixed instructions per symbol lookup (_dl_lookup_symbol entry).
    lookup_base_instructions: int = 200
    #: Instructions per character of the ELF hash computation.
    hash_instructions_per_char: int = 2
    #: Instructions per hash-table probe (bucket fetch, index arithmetic).
    probe_instructions: int = 100
    #: Instructions for a GNU-hash Bloom-filter check (one word test).
    bloom_check_instructions: int = 8
    #: Instructions per character compared by strcmp on a hash collision.
    strcmp_instructions_per_char: int = 1
    #: Instructions to apply one relocation (compute + write).
    relocation_instructions: int = 35
    #: Instructions of the lazy-binding trampoline (_dl_runtime_resolve
    #: register save/restore and PLT fixup) excluding the lookup itself.
    lazy_fixup_instructions: int = 1_500
    #: Instructions for a call through an already-resolved PLT slot.
    plt_call_instructions: int = 3
    #: Fixed instructions for dlsym bookkeeping around the lookup.
    dlsym_instructions: int = 250

    # --- Python runtime ---------------------------------------------------
    #: Instructions of interpreter boot (site, codecs, pyMPI init).
    interpreter_boot_instructions: int = 250_000_000
    #: Instructions of Python import machinery per module (find_module,
    #: sys.modules bookkeeping) excluding the dlopen itself.
    py_import_overhead_instructions: int = 180_000
    #: Instructions of a module's init function (PyModule_Create etc.).
    py_module_init_instructions: int = 8_000
    #: Instructions to register one method-table entry at init.
    method_register_instructions: int = 60
    #: Interpreter overhead of calling a C entry point from Python.
    py_call_overhead_instructions: int = 350
    #: Overhead of a native C call (prologue/epilogue).
    c_call_instructions: int = 12
    #: Instructions to marshal one C argument.
    argument_instructions: int = 3

    # --- process / job -------------------------------------------------
    #: Instructions between exec() and control reaching ld.so (kernel exec,
    #: stack/vdso setup).
    exec_base_instructions: int = 5_000_000
    #: Seconds of job-launcher overhead before exec on every task (srun).
    job_launch_latency_s: float = 0.35

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.cycles_per_instruction <= 0:
            raise ConfigError("CPI must be positive")
        if not 0.0 <= self.dlopen_relookup_fraction <= 1.0:
            raise ConfigError("dlopen_relookup_fraction must be in [0, 1]")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigError("page size must be a positive power of two")

    def instructions_to_cycles(self, instructions: int | float) -> int:
        """Convert an instruction count to cycles under the model's CPI."""
        if instructions < 0:
            raise ConfigError(f"negative instruction count: {instructions}")
        return round(instructions * self.cycles_per_instruction)

    def seconds_to_cycles(self, seconds: float) -> int:
        """Convert seconds to cycles at the model's clock frequency."""
        if seconds < 0:
            raise ConfigError(f"negative seconds: {seconds}")
        return round(seconds * self.frequency_hz)

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert cycles to seconds at the model's clock frequency."""
        return cycles / float(self.frequency_hz)

"""Compute nodes and processes.

A :class:`Node` bundles the per-node hardware state: a cycle clock, a
cache hierarchy and a disk buffer cache shared by every process (and every
debug server) running on the node.  A :class:`Process` owns an address
space and environment; the dynamic linker attaches its link map to it.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.cache.hierarchy import CacheHierarchy
from repro.fs.buffercache import BufferCache
from repro.fs.files import FileImage
from repro.machine.clock import SimClock
from repro.machine.costs import CostModel
from repro.machine.osprofile import OsProfile, linux_chaos
from repro.machine.paging import AddressSpace
from repro.rng import SeededRng

_pid_counter = itertools.count(1000)


class Node:
    """One compute node: clock + caches + buffer cache."""

    def __init__(
        self,
        name: str = "node0",
        costs: CostModel | None = None,
        hierarchy: CacheHierarchy | None = None,
        buffer_cache: BufferCache | None = None,
        cores: int = 8,
    ) -> None:
        self.name = name
        self.costs = costs or CostModel()
        # Built lazily: allocating the per-set tag lists dominates node
        # construction, and most nodes of a >1k-node cluster (overlay
        # relay daemons, never-simulated peers) never execute a single
        # modelled instruction.
        self._hierarchy = hierarchy
        self.buffer_cache = buffer_cache or BufferCache(
            page_bytes=self.costs.page_bytes
        )
        self.clock = SimClock(self.costs.frequency_hz)
        self.cores = cores
        self.processes: list[Process] = []

    @property
    def hierarchy(self) -> CacheHierarchy:
        """The node's CPU cache hierarchy, created on first use."""
        if self._hierarchy is None:
            self._hierarchy = CacheHierarchy(
                l2_hit_penalty=self.costs.l2_hit_penalty,
                memory_penalty=self.costs.memory_penalty,
            )
        return self._hierarchy

    @property
    def seconds(self) -> float:
        """Current simulated node time."""
        return self.clock.seconds

    def read_file(self, image: FileImage, offset: int = 0, size: int | None = None) -> float:
        """Read a file range through the buffer cache; advance the clock.

        Returns the seconds the read took.
        """
        seconds = self.buffer_cache.read(image, offset, size)
        self.clock.add_seconds(seconds)
        return seconds

    def spawn(
        self,
        profile: OsProfile | None = None,
        env: dict[str, str] | None = None,
        rng: SeededRng | None = None,
    ) -> "Process":
        """Create a process on this node."""
        process = Process(
            node=self,
            profile=profile or linux_chaos(),
            env=dict(env or {}),
            rng=rng,
        )
        self.processes.append(process)
        return process

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name}, t={self.seconds:.3f}s)"


class TimedReadNode(Node):
    """A node whose file reads contend on the shared timed FS queues.

    Used for every entity with a private virtual clock that the
    stepped-execution layer interleaves — simulated MPI ranks, debugger
    daemons.  It shares its home node's disk buffer cache, and cache
    misses route through the backing file system's timed reservation
    queue (``request_at``) at this clock's current virtual time, so
    concurrent readers' requests contend instead of being charged the
    analytic closed form.
    """

    def read_file(
        self, image: FileImage, offset: int = 0, size: int | None = None
    ) -> float:
        def fetch(n_bytes: int, n_ops: int) -> float:
            request_at = getattr(image.filesystem, "request_at", None)
            if request_at is None:
                return image.filesystem.read_seconds(n_bytes, n_ops)
            now = self.clock.seconds
            return request_at(now, n_bytes, n_ops) - now

        seconds = self.buffer_cache.read_with(image, offset, size, fetch)
        self.clock.add_seconds(seconds)
        return seconds


class Process:
    """A simulated process: address space, environment, link map slot."""

    def __init__(
        self,
        node: Node,
        profile: OsProfile,
        env: dict[str, str],
        rng: SeededRng | None = None,
    ) -> None:
        self.pid = next(_pid_counter)
        self.node = node
        self.profile = profile
        self.env = env
        self.address_space = AddressSpace(profile=profile, rng=rng)
        #: Set by the dynamic linker at program startup.
        self.link_map: Any = None
        #: Wall-clock (node seconds) when exec began — the paper measures
        #: startup as "time between program invocation and the first line
        #: of code" via a command-line timestamp.
        self.invoked_at: float = node.seconds

    def getenv(self, name: str, default: str | None = None) -> str | None:
        """Environment lookup (e.g. LD_BIND_NOW)."""
        return self.env.get(name, default)

    @property
    def bind_now(self) -> bool:
        """True if LD_BIND_NOW forces eager PLT binding (Table I row 3)."""
        value = self.env.get("LD_BIND_NOW", "")
        return value not in ("", "0")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(pid={self.pid}, node={self.node.name})"

"""Operating-system profiles.

Section II.B.2 of the paper discusses three OS behaviours that interact
badly with Python-scale DLL usage:

- the AIX 32-bit 256 MB text-segment limit,
- disabling demand paging "a trend in contemporary massively parallel
  systems" (BlueGene/L), trading memory-management complexity for text
  sizes that must be fully resident,
- address randomization (RedHat exec-shield), which makes the per-task
  link maps heterogeneous and defeats tools that share parse results
  across tasks,

plus the AIX-before-4.3.2 ptrace rule that all breakpoints be reinserted
on every load event (Section II.B.3).  An :class:`OsProfile` captures all
four switches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MIB


@dataclass(frozen=True)
class OsProfile:
    """Switches describing how the simulated OS treats a process."""

    name: str
    page_bytes: int = 4096
    #: Hard ceiling on total mapped text, or None for no limit.
    text_limit_bytes: int | None = None
    #: If False, file-backed mappings are read in full at map time
    #: (no major faults later — the BlueGene/L behaviour).
    demand_paging: bool = True
    #: exec-shield-style randomization of DLL load addresses.
    randomize_load_addresses: bool = False
    #: AIX-style ptrace: every load event forces all breakpoints to be
    #: reinserted by the debugger (the B x T2 term of Section II.B.3).
    ptrace_reinsert_breakpoints: bool = False

    def __post_init__(self) -> None:
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigError("page size must be a positive power of two")
        if self.text_limit_bytes is not None and self.text_limit_bytes <= 0:
            raise ConfigError("text limit must be positive when set")


def linux_chaos(randomize_load_addresses: bool = False) -> OsProfile:
    """Zeus's CHAOS (RHEL-based) Linux: demand paging, no text limit."""
    return OsProfile(
        name="linux_chaos",
        randomize_load_addresses=randomize_load_addresses,
    )


def aix32() -> OsProfile:
    """AIX 32-bit process model: 256 MB text limit, reinsert-on-load ptrace."""
    return OsProfile(
        name="aix32",
        text_limit_bytes=256 * MIB,
        ptrace_reinsert_breakpoints=True,
    )


def bluegene() -> OsProfile:
    """BlueGene/L-style lightweight kernel: no demand paging."""
    return OsProfile(name="bluegene", demand_paging=False)

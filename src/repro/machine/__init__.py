"""Simulated hardware and operating-system substrate.

A :class:`Node` models one Zeus compute node (clock, cache hierarchy,
disk buffer cache); a :class:`Cluster` wires several nodes to shared file
systems and an interconnect.  A :class:`Process` owns a demand-paged
:class:`AddressSpace` governed by an :class:`OsProfile` (Linux/CHAOS by
default, with AIX-32 and BlueGene-style profiles for the Section II.B.2
behaviours).  All instruction, cache and paging costs funnel through an
:class:`ExecutionContext`, and every tunable constant lives in
:class:`CostModel`.
"""

from repro.machine.costs import CostModel
from repro.machine.clock import SimClock
from repro.machine.osprofile import OsProfile, aix32, bluegene, linux_chaos
from repro.machine.paging import AddressSpace, Mapping
from repro.machine.node import Node, Process
from repro.machine.context import ExecutionContext
from repro.machine.cluster import Cluster

__all__ = [
    "AddressSpace",
    "Cluster",
    "CostModel",
    "ExecutionContext",
    "Mapping",
    "Node",
    "OsProfile",
    "Process",
    "SimClock",
    "aix32",
    "bluegene",
    "linux_chaos",
]

"""Demand-paged virtual address space.

Mappings are created by the loader (one per ELF section).  The first touch
of a page raises a fault: anonymous pages cost the kernel trap only, while
file-backed pages additionally read the page through the node's buffer
cache — this is how the cost of reading DLL contents lands *where the
access happens* (at import for Vanilla/RTLD_NOW, at first call for lazy
binding, at startup for LD_BIND_NOW), which is the central mechanism behind
Table I.

The profile's ``demand_paging=False`` switch (BlueGene-style) makes
:meth:`AddressSpace.map` report the whole file range as faulted up front;
``text_limit_bytes`` (AIX 32-bit) raises :class:`TextSegmentLimitError`
when exceeded; ``randomize_load_addresses`` (exec-shield) adds a random
page slack before each mapping so per-process layouts diverge.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import ConfigError, PageFaultError, TextSegmentLimitError
from repro.fs.files import FileImage
from repro.machine.osprofile import OsProfile
from repro.rng import SeededRng


@dataclass
class Mapping:
    """One contiguous virtual mapping (an ELF section or anonymous area)."""

    start: int
    size: int
    name: str
    is_text: bool = False
    file: FileImage | None = None
    file_offset: int = 0

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.start + self.size

    def contains(self, address: int) -> bool:
        """True if the address falls inside this mapping."""
        return self.start <= address < self.end


@dataclass
class Fault:
    """A page fault produced by a touch: where, and what backs it."""

    page_address: int
    mapping: Mapping

    @property
    def is_major(self) -> bool:
        """True if servicing requires file IO."""
        return self.mapping.file is not None

    def file_range(self, page_bytes: int) -> tuple[FileImage, int, int]:
        """The (file, offset, size) backing this page."""
        mapping = self.mapping
        if mapping.file is None:
            raise ConfigError("anonymous fault has no file range")
        offset = mapping.file_offset + (self.page_address - mapping.start)
        size = min(page_bytes, mapping.file_offset + mapping.size - offset)
        return mapping.file, offset, max(0, size)


@dataclass
class AddressSpace:
    """A process's mappings plus the set of resident pages."""

    profile: OsProfile
    rng: SeededRng | None = None
    base_address: int = 0x0000_0000_0040_0000
    _mappings: list[Mapping] = field(default_factory=list)
    _starts: list[int] = field(default_factory=list)
    _present: set[int] = field(default_factory=set)
    _next_address: int = 0
    text_bytes: int = 0

    def __post_init__(self) -> None:
        self._next_address = self.base_address

    @property
    def page_bytes(self) -> int:
        """Page size inherited from the OS profile."""
        return self.profile.page_bytes

    @property
    def mappings(self) -> tuple[Mapping, ...]:
        """All mappings in address order."""
        return tuple(self._mappings)

    def _align_up(self, value: int) -> int:
        page = self.page_bytes
        return (value + page - 1) & ~(page - 1)

    def map(
        self,
        size: int,
        name: str,
        *,
        is_text: bool = False,
        file: FileImage | None = None,
        file_offset: int = 0,
    ) -> Mapping:
        """Create a mapping and return it.

        With demand paging enabled pages start non-resident.  Without it
        (BlueGene profile) the whole mapping is immediately resident and
        the caller is responsible for charging the up-front file read (see
        :meth:`prefault_ranges`).
        """
        if size <= 0:
            raise ConfigError(f"mapping size must be positive, got {size}")
        if is_text:
            new_text = self.text_bytes + size
            limit = self.profile.text_limit_bytes
            if limit is not None and new_text > limit:
                raise TextSegmentLimitError(new_text, limit)
            self.text_bytes = new_text
        start = self._align_up(self._next_address)
        if self.profile.randomize_load_addresses and self.rng is not None:
            start += self.page_bytes * self.rng.randint(0, 255)
        mapping = Mapping(
            start=start,
            size=size,
            name=name,
            is_text=is_text,
            file=file,
            file_offset=file_offset,
        )
        index = bisect.bisect_left(self._starts, start)
        self._starts.insert(index, start)
        self._mappings.insert(index, mapping)
        self._next_address = self._align_up(mapping.end) + self.page_bytes
        if not self.profile.demand_paging:
            for page in self._pages_of(mapping.start, mapping.size):
                self._present.add(page)
        return mapping

    def _pages_of(self, address: int, size: int) -> range:
        page = self.page_bytes
        first = address // page
        last = (address + size - 1) // page
        return range(first, last + 1)

    def find_mapping(self, address: int) -> Mapping:
        """Locate the mapping containing an address."""
        index = bisect.bisect_right(self._starts, address) - 1
        if index >= 0:
            mapping = self._mappings[index]
            if mapping.contains(address):
                return mapping
        raise PageFaultError(address)

    def touch(self, address: int, size: int) -> list[Fault]:
        """Mark a byte range resident, returning the faults it produced."""
        if size <= 0:
            raise ConfigError(f"touch size must be positive, got {size}")
        faults: list[Fault] = []
        page_size = self.page_bytes
        for page in self._pages_of(address, size):
            if page in self._present:
                continue
            page_address = page * page_size
            mapping = self.find_mapping(page_address)
            self._present.add(page)
            faults.append(Fault(page_address=page_address, mapping=mapping))
        return faults

    def mark_range_present(self, address: int, size: int) -> None:
        """Mark a byte range resident without producing faults.

        Used for kernel read-ahead (pages brought in alongside a fault)
        and for metadata the dynamic linker reads eagerly at map time.
        """
        if size <= 0:
            return
        for page in self._pages_of(address, size):
            self._present.add(page)

    def is_resident(self, address: int, size: int = 1) -> bool:
        """True if the whole range is already resident."""
        return all(page in self._present for page in self._pages_of(address, size))

    def resident_pages(self) -> int:
        """Number of resident pages."""
        return len(self._present)

    def mapped_bytes(self) -> int:
        """Sum of all mapping sizes."""
        return sum(mapping.size for mapping in self._mappings)

    def prefault_ranges(self) -> list[tuple[FileImage, int, int]]:
        """File ranges that must be read up front when paging is disabled."""
        if self.profile.demand_paging:
            return []
        return [
            (mapping.file, mapping.file_offset, mapping.size)
            for mapping in self._mappings
            if mapping.file is not None
        ]

"""The closed-form tool-update cost model of Section II.B.3.

"consider an application that links and loads M libraries and runs at N
MPI tasks.  When running under tool control, the application tasks must
stop and wait for the tool update mechanism at least M x N times.  Thus,
the cost is roughly M x N x T1 ... In such a system, the penalty becomes
M x N x (T1 + (B x T2)) where B is the number of the existing breakpoints
and T2 is the time it takes to reinsert a breakpoint.  Even on a medium
size run, the total cost becomes ~500 x ~500 x (~10 msec + (~10 x ~1
msec)) = ~83 minutes!"
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ToolUpdateCostModel:
    """Parameters of the M x N x (T1 + B x T2) model."""

    #: Seconds to handle a single load event for a single task (T1).
    t1_s: float = 0.010
    #: Number of existing breakpoints (B).
    breakpoints: int = 10
    #: Seconds to reinsert one breakpoint (T2).
    t2_s: float = 0.001
    #: Whether the OS forces breakpoint reinsertion on load events
    #: (AIX before 4.3.2).
    reinsert_on_load: bool = True

    def __post_init__(self) -> None:
        if self.t1_s < 0 or self.t2_s < 0 or self.breakpoints < 0:
            raise ConfigError("cost-model parameters must be non-negative")

    def per_event_seconds(self) -> float:
        """Cost of one (library, task) update."""
        penalty = self.t1_s
        if self.reinsert_on_load:
            penalty += self.breakpoints * self.t2_s
        return penalty

    def total_seconds(self, n_libraries: int, n_tasks: int) -> float:
        """Total startup tool-update cost for M libraries at N tasks."""
        if n_libraries < 0 or n_tasks < 0:
            raise ConfigError("library/task counts must be non-negative")
        return n_libraries * n_tasks * self.per_event_seconds()

    def total_minutes(self, n_libraries: int, n_tasks: int) -> float:
        """Same, in minutes (the unit the paper quotes)."""
        return self.total_seconds(n_libraries, n_tasks) / 60.0


def paper_example() -> dict[str, float]:
    """Reproduce the worked example: ~41.5 min without reinsertion,
    ~83 min with it (M=500, N=500, T1=10ms, B=10, T2=1ms)."""
    base = ToolUpdateCostModel(reinsert_on_load=False)
    aix = ToolUpdateCostModel(reinsert_on_load=True)
    return {
        "minutes_without_reinsertion": base.total_minutes(500, 500),
        "minutes_with_reinsertion": aix.total_minutes(500, 500),
    }

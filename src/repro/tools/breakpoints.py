"""The tool-side breakpoint table.

A breakpoint replaces the instruction byte at an address with a trap; the
tool must remember the original byte to step over or remove it.  The AIX
ptrace variant (Section II.B.2) forces the *whole table* to be reinserted
on every dynamic-load event — the ``B x T2`` term of the paper's cost
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ToolError


@dataclass(frozen=True)
class Breakpoint:
    """One planted breakpoint."""

    address: int
    #: The displaced original instruction byte (simulated).
    original_byte: int = 0xCC

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ToolError(f"negative breakpoint address {self.address}")


@dataclass
class BreakpointTable:
    """All breakpoints a tool holds in one task."""

    _by_address: dict[int, Breakpoint] = field(default_factory=dict)

    def insert(self, address: int) -> Breakpoint:
        """Plant a breakpoint; re-planting the same address is an error."""
        if address in self._by_address:
            raise ToolError(f"breakpoint already set at {address:#x}")
        bp = Breakpoint(address=address)
        self._by_address[address] = bp
        return bp

    def remove(self, address: int) -> Breakpoint:
        """Remove a breakpoint, returning it."""
        try:
            return self._by_address.pop(address)
        except KeyError:
            raise ToolError(f"no breakpoint at {address:#x}") from None

    def lookup(self, address: int) -> Breakpoint | None:
        """The breakpoint at an address, if any."""
        return self._by_address.get(address)

    def __len__(self) -> int:
        return len(self._by_address)

    def __iter__(self):
        return iter(self._by_address.values())

    def addresses(self) -> list[int]:
        """All planted addresses (sorted, for deterministic reinsertion)."""
        return sorted(self._by_address)

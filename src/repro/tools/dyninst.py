"""A Dyninst-like runtime-instrumentation library model.

The paper lists Dyninst alongside TotalView as a tool that "must be
notified of every dynamic linking and loading event so that they can
update their internal process representations".  The model here covers
the two costs that scale with Pynamic's knobs: parsing a DSO's symbols
when it loads, and patching instrumentation (a base trampoline per
function) into the functions a user asks to instrument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf.image import SharedObject
from repro.elf.symbols import SymbolKind
from repro.errors import ToolError


@dataclass(frozen=True)
class InstrumentationPoint:
    """One patched location (function entry)."""

    soname: str
    symbol: str
    address_offset: int


@dataclass
class Instrumenter:
    """Tracks parsed objects and patched functions; accumulates cost."""

    #: Seconds to parse one byte of symbol/debug data at load time.
    parse_seconds_per_byte: float = 60 / 2.4e9
    #: Seconds to generate + insert one entry trampoline.
    patch_seconds_per_point: float = 0.00004
    parsed: dict[str, int] = field(default_factory=dict)
    points: list[InstrumentationPoint] = field(default_factory=list)
    total_seconds: float = 0.0

    def handle_load(self, shared: SharedObject) -> float:
        """Process a load event: parse the new object's tool sections."""
        if shared.soname in self.parsed:
            raise ToolError(f"{shared.soname} was already parsed")
        tool_bytes = shared.sections.tool_bytes
        self.parsed[shared.soname] = tool_bytes
        seconds = tool_bytes * self.parse_seconds_per_byte
        self.total_seconds += seconds
        return seconds

    def instrument_function(self, shared: SharedObject, symbol: str) -> InstrumentationPoint:
        """Patch one function's entry with a trampoline."""
        if shared.soname not in self.parsed:
            raise ToolError(
                f"cannot instrument {shared.soname}: object not parsed yet"
            )
        definition = shared.symbol_table.get(symbol)
        if definition is None or definition.kind is not SymbolKind.FUNCTION:
            raise ToolError(f"{shared.soname} has no function {symbol!r}")
        point = InstrumentationPoint(
            soname=shared.soname,
            symbol=symbol,
            address_offset=definition.value,
        )
        self.points.append(point)
        self.total_seconds += self.patch_seconds_per_point
        return point

    def instrument_all_functions(self, shared: SharedObject) -> int:
        """Patch every exported function of an object; returns the count."""
        count = 0
        for definition in shared.symbol_table.symbols():
            if definition.kind is SymbolKind.FUNCTION:
                self.instrument_function(shared, definition.name)
                count += 1
        return count

"""Development-tool-chain simulation (Section II.B.3 / IV.B).

- :mod:`repro.tools.ptrace` — a process-control interface with the AIX
  pre-4.3.2 quirk (all breakpoints reinserted on every load event),
- :mod:`repro.tools.breakpoints` — the tool-side breakpoint table,
- :mod:`repro.tools.debugger` — a TotalView-like parallel debugger whose
  two-phase startup reproduces Table IV,
- :mod:`repro.tools.dyninst` — a runtime-instrumentation library model,
- :mod:`repro.tools.costmodel` — the closed-form M x N x (T1 + B x T2)
  tool-update cost model, including the paper's "~83 minutes" example.
"""

from repro.tools.breakpoints import Breakpoint, BreakpointTable
from repro.tools.ptrace import PtraceInterface, TracedTask
from repro.tools.debugger import DebuggerStartup, ParallelDebugger, ToolCostModel
from repro.tools.dyninst import Instrumenter
from repro.tools.costmodel import ToolUpdateCostModel, paper_example

__all__ = [
    "Breakpoint",
    "BreakpointTable",
    "DebuggerStartup",
    "Instrumenter",
    "ParallelDebugger",
    "PtraceInterface",
    "ToolCostModel",
    "ToolUpdateCostModel",
    "TracedTask",
    "paper_example",
]

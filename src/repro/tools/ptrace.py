"""A ptrace-style process-control interface.

"tools like the TotalView parallel debugger or the Dyninst dynamic
instrumentation library must be notified of every dynamic linking and
loading event so that they can update their internal process
representations" (Section II.B.3).  This module models that interface:
attach/stop/continue round trips, breakpoint insertion, and load-event
handling — including the AIX pre-4.3.2 requirement that a client
"reinsert all existing breakpoints on each load or unload event".

Costs are charged in *tool-side instructions* plus a per-round-trip
syscall latency, accumulated on a :class:`TracedTask` so a debugger can
aggregate them across tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PtraceError
from repro.machine.node import Process
from repro.machine.osprofile import OsProfile
from repro.tools.breakpoints import BreakpointTable


@dataclass
class TracedTask:
    """One attached MPI task from the tool's point of view."""

    process: Process
    attached: bool = False
    stopped: bool = False
    breakpoints: BreakpointTable = field(default_factory=BreakpointTable)
    #: Accumulated tool-side seconds spent controlling this task.
    control_seconds: float = 0.0
    load_events_handled: int = 0


class PtraceInterface:
    """The OS's process-control interface, parameterized by profile."""

    #: Seconds per ptrace round trip (stop, peek/poke, continue).
    ROUND_TRIP_S = 0.0002
    #: Seconds to write one breakpoint trap into the inferior.
    BREAKPOINT_POKE_S = 0.0001

    def __init__(self, profile: OsProfile) -> None:
        self.profile = profile
        self.round_trips = 0

    def _charge(self, task: TracedTask, seconds: float) -> None:
        task.control_seconds += seconds
        self.round_trips += 1

    def attach(self, task: TracedTask) -> None:
        """PTRACE_ATTACH: stop the task and take control."""
        if task.attached:
            raise PtraceError("task is already attached")
        task.attached = True
        task.stopped = True
        self._charge(task, self.ROUND_TRIP_S)

    def detach(self, task: TracedTask) -> None:
        """PTRACE_DETACH."""
        self._require_attached(task)
        task.attached = False
        task.stopped = False
        self._charge(task, self.ROUND_TRIP_S)

    def stop(self, task: TracedTask) -> None:
        """Signal-stop a running task."""
        self._require_attached(task)
        if not task.stopped:
            task.stopped = True
            self._charge(task, self.ROUND_TRIP_S)

    def cont(self, task: TracedTask) -> None:
        """PTRACE_CONT."""
        self._require_attached(task)
        if not task.stopped:
            raise PtraceError("cannot continue a running task")
        task.stopped = False
        self._charge(task, self.ROUND_TRIP_S)

    def set_breakpoint(self, task: TracedTask, address: int) -> None:
        """Plant a breakpoint (task must be stopped)."""
        self._require_stopped(task)
        task.breakpoints.insert(address)
        self._charge(task, self.BREAKPOINT_POKE_S)

    def remove_breakpoint(self, task: TracedTask, address: int) -> None:
        """Remove a breakpoint (task must be stopped)."""
        self._require_stopped(task)
        task.breakpoints.remove(address)
        self._charge(task, self.BREAKPOINT_POKE_S)

    def handle_load_event(self, task: TracedTask) -> float:
        """Process one dynamic-load event on a task.

        The task stops at the linker's debug rendezvous; the tool reads
        the updated link map.  On an AIX-style profile the tool must then
        reinsert every existing breakpoint (the ``B x T2`` penalty of
        Section II.B.3).  Returns the tool-side seconds this event cost.
        """
        self._require_attached(task)
        before = task.control_seconds
        was_running = not task.stopped
        if was_running:
            self.stop(task)
        # Read the rendezvous structure + updated link map head.
        self._charge(task, self.ROUND_TRIP_S)
        if self.profile.ptrace_reinsert_breakpoints:
            for _address in task.breakpoints.addresses():
                self._charge(task, self.BREAKPOINT_POKE_S)
        if was_running:
            self.cont(task)
        task.load_events_handled += 1
        return task.control_seconds - before

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _require_attached(task: TracedTask) -> None:
        if not task.attached:
            raise PtraceError("task is not attached")

    def _require_stopped(self, task: TracedTask) -> None:
        self._require_attached(task)
        if not task.stopped:
            raise PtraceError("task must be stopped for this operation")

"""Schema creation/upgrade and legacy pickle-cache absorption.

Two migrations live here:

- :func:`ensure_schema` — bring a warehouse connection to the current
  :data:`~repro.results.schema.SCHEMA_VERSION`.  Rows written by a
  *different* version are never read: they are counted, dropped and
  reported by the caller (the silent-failure mode of the pickle cache,
  made structural and loud).
- :func:`migrate_pickle_dir` — absorb a legacy ``SweepRunner``
  ``cache_dir`` full of ``<digest>.pkl`` blobs into the warehouse on
  first open.  Payload bytes are copied verbatim (the replayed
  ``JobReport`` is bit-identical to what the pickle layer returned),
  typed columns are extracted from the unpickled value, and the pickle
  file is removed once its row is committed.  Unreadable pickles are
  counted as corrupt and left in place for post-mortem; the
  ``.pkl.tmp.<pid>`` files the old writer leaked on mid-write crashes
  are swept and counted too.
"""

from __future__ import annotations

import glob
import os
import pickle
import sqlite3
import warnings

from repro.results.schema import (
    CREATE_INDEXES,
    CREATE_META,
    CREATE_RESULTS,
    SCHEMA_VERSION,
    extract_columns,
)


def ensure_schema(conn: sqlite3.Connection) -> int:
    """Create or upgrade the schema; returns dropped-row count.

    A version mismatch drops the results table (the payloads were
    pickled against another layout and cannot be trusted) — the caller
    counts and reports the loss.
    """
    conn.execute("BEGIN IMMEDIATE")
    try:
        conn.execute(CREATE_META)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        dropped = 0
        if row is not None and int(row[0]) != SCHEMA_VERSION:
            try:
                dropped = conn.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone()[0]
            except sqlite3.DatabaseError:
                dropped = 0
            conn.execute("DROP TABLE IF EXISTS results")
        conn.execute(CREATE_RESULTS)
        for statement in CREATE_INDEXES:
            conn.execute(statement)
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', ?)"
            " ON CONFLICT (key) DO UPDATE SET value = excluded.value",
            (str(SCHEMA_VERSION),),
        )
        conn.commit()
    except sqlite3.DatabaseError:
        conn.rollback()
        raise
    return dropped


def migrate_pickle_dir(store: "object", directory: str) -> tuple[int, int]:
    """Absorb a legacy pickle cache dir into ``store`` (in place).

    Returns ``(migrated, corrupt)``.  Safe to run concurrently: rows
    are inserted with ``INSERT OR IGNORE`` inside one ``BEGIN
    IMMEDIATE`` transaction, and a pickle file is only unlinked after
    its row is committed, so two processes migrating the same dir
    cannot lose an entry.
    """
    leaked = glob.glob(os.path.join(directory, "*.pkl.tmp.*"))
    pickles = sorted(glob.glob(os.path.join(directory, "*.pkl")))
    if not leaked and not pickles:
        return (0, 0)
    migrated = corrupt = 0
    for path in leaked:
        # A .tmp.<pid> file is a torn write by definition — the old
        # writer leaked it when pickle.dump raised mid-write.
        corrupt += 1
        try:
            os.unlink(path)
        except OSError:
            pass
    entries = []
    for path in pickles:
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
            result = pickle.loads(payload)
        except Exception as exc:
            corrupt += 1
            warnings.warn(
                f"sweep cache migration: unreadable pickle {path} "
                f"({type(exc).__name__}: {exc}); left in place",
                stacklevel=3,
            )
            continue
        digest = os.path.splitext(os.path.basename(path))[0]
        entries.append((path, digest, payload, result))
    if entries:
        import json

        from repro.results.store import _utcnow

        conn = store._connect()
        now = _utcnow()
        conn.execute("BEGIN IMMEDIATE")
        try:
            for _, digest, payload, result in entries:
                columns = extract_columns(result)
                metrics = columns.pop("metrics")
                conn.execute(
                    """
                    INSERT OR IGNORE INTO results (
                        cache_key, func, result_key, kind, payload,
                        spec_json, engine, distribution, n_tasks, n_nodes,
                        cold, total_s, startup_s, import_s, visit_s, mpi_s,
                        total_p50, total_p95, total_max, total_skew_s,
                        startup_p50, startup_p95, startup_max,
                        startup_skew_s, staging_p50, staging_p95,
                        staging_max, staging_skew_s, metrics_json,
                        git_commit, created_at, updated_at
                    ) VALUES (
                        :cache_key, NULL, NULL, :kind, :payload, NULL,
                        :engine, :distribution, :n_tasks, :n_nodes, :cold,
                        :total_s, :startup_s, :import_s, :visit_s, :mpi_s,
                        :total_p50, :total_p95, :total_max, :total_skew_s,
                        :startup_p50, :startup_p95, :startup_max,
                        :startup_skew_s, :staging_p50, :staging_p95,
                        :staging_max, :staging_skew_s, :metrics_json,
                        NULL, :created_at, :updated_at
                    )
                    """,
                    {
                        "cache_key": digest,
                        "kind": type(result).__name__,
                        "payload": payload,
                        "metrics_json": json.dumps(metrics, sort_keys=True),
                        "created_at": now,
                        "updated_at": now,
                        **columns,
                    },
                )
            conn.commit()
        except sqlite3.DatabaseError:
            conn.rollback()
            raise
        for path, _, _, _ in entries:
            try:
                os.unlink(path)
            except OSError:
                pass
        migrated = len(entries)
    store.migrated += migrated
    store.corrupt += corrupt
    if migrated or corrupt:
        warnings.warn(
            f"sweep cache migration: absorbed {migrated} pickle entr"
            f"{'y' if migrated == 1 else 'ies'} into {store.path}"
            + (f"; {corrupt} corrupt entr"
               f"{'y' if corrupt == 1 else 'ies'} counted" if corrupt else ""),
            stacklevel=3,
        )
    return (migrated, corrupt)

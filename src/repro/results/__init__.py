"""The results warehouse: SQLite-backed, schema-versioned sweep store.

Replaces the silent-failure pickle disk cache behind
:class:`repro.harness.sweep.SweepRunner` — WAL-mode, concurrent-writer
safe (``BEGIN IMMEDIATE``), keyed by canonical
:attr:`~repro.scenario.spec.ScenarioSpec.spec_hash`, queryable via
``pynamic-repro results query/diff/export``.
"""

from repro.results.query import (
    DEFAULT_METRICS,
    diff_rows,
    export_document,
    open_warehouse,
    query_rows,
    resolve_metrics,
    write_json_atomic,
)
from repro.results.schema import METRIC_COLUMNS, SCHEMA_VERSION
from repro.results.store import (
    ResultsWarehouse,
    cache_key,
    current_commit,
    resolve_warehouse_path,
)

__all__ = [
    "DEFAULT_METRICS",
    "METRIC_COLUMNS",
    "ResultsWarehouse",
    "SCHEMA_VERSION",
    "cache_key",
    "current_commit",
    "diff_rows",
    "export_document",
    "open_warehouse",
    "query_rows",
    "resolve_metrics",
    "resolve_warehouse_path",
    "write_json_atomic",
]

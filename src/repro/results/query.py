"""Query, diff and export over the results warehouse.

These are the functions behind ``pynamic-repro results
query/diff/export``: filter stored rows by typed columns, compare two
warehouses metric-by-metric (the regression gate over metric
trajectories across commits — run yesterday's CI artifact against
today's), and dump everything as JSON for plotting or archiving.
"""

from __future__ import annotations

import json
import os

from repro.errors import ConfigError
from repro.results.schema import METRIC_COLUMNS, SCHEMA_VERSION
from repro.results.store import (
    ResultsWarehouse,
    current_commit,
    resolve_warehouse_path,
)

#: Metrics ``results query``/``diff`` show when none are requested.
DEFAULT_METRICS = ("total_max", "staging_max")


def open_warehouse(location: "str | os.PathLike[str]") -> ResultsWarehouse:
    """Open an *existing* warehouse (cache dir or DB file) read-mostly.

    Unlike the sweep runner's open, a missing file is an error here —
    querying a warehouse that does not exist should say so, not create
    an empty one.
    """
    path = resolve_warehouse_path(location)
    if not os.path.exists(path):
        raise ConfigError(
            f"no results warehouse at {os.fspath(location)!r} (looked for "
            f"{path}); populate one with a --cache-dir sweep first"
        )
    return ResultsWarehouse.for_cache_dir(os.fspath(location))


def resolve_metrics(names: "list[str] | None") -> list[str]:
    """Validate requested metric names against the typed columns."""
    if not names:
        return list(DEFAULT_METRICS)
    valid = set(METRIC_COLUMNS)
    for name in names:
        if name not in valid:
            raise ConfigError(
                f"unknown metric {name!r}; choose from {sorted(valid)}"
            )
    return list(names)


def query_rows(
    store: ResultsWarehouse,
    engine: "str | None" = None,
    distribution: "str | None" = None,
    kind: "str | None" = None,
    commit: "str | None" = None,
    key_prefix: "str | None" = None,
) -> list[dict]:
    """Stored rows matching the filters (payloads excluded)."""
    return store.rows(
        engine=engine,
        distribution=distribution,
        kind=kind,
        commit=commit,
        key_prefix=key_prefix,
    )


def diff_rows(
    old_rows: list[dict],
    new_rows: list[dict],
    metrics: list[str],
) -> dict:
    """Per-key metric deltas between two warehouses' rows.

    Rows pair up by ``cache_key`` (same function + same canonical spec
    hash — the same grid point).  Returns a dict with ``changed`` (one
    entry per shared key and metric where both sides hold a number),
    ``only_old``/``only_new`` key lists, and ``max_regression_pct``
    (worst relative increase across all compared metrics; staging and
    total times regress *upward*).
    """
    old_by_key = {row["cache_key"]: row for row in old_rows}
    new_by_key = {row["cache_key"]: row for row in new_rows}
    shared = sorted(old_by_key.keys() & new_by_key.keys())
    changed = []
    max_regression = 0.0
    for key in shared:
        old_row, new_row = old_by_key[key], new_by_key[key]
        for metric in metrics:
            old_value, new_value = old_row.get(metric), new_row.get(metric)
            if not isinstance(old_value, (int, float)) or not isinstance(
                new_value, (int, float)
            ):
                continue
            delta = new_value - old_value
            pct = (delta / old_value * 100.0) if old_value else 0.0
            max_regression = max(max_regression, pct)
            changed.append(
                {
                    "cache_key": key,
                    "spec": (new_row.get("result_key") or key)[:16],
                    "distribution": new_row.get("distribution"),
                    "n_nodes": new_row.get("n_nodes"),
                    "metric": metric,
                    "old": old_value,
                    "new": new_value,
                    "delta": delta,
                    "pct": pct,
                    "old_commit": old_row.get("git_commit"),
                    "new_commit": new_row.get("git_commit"),
                }
            )
    return {
        "changed": changed,
        "only_old": sorted(old_by_key.keys() - new_by_key.keys()),
        "only_new": sorted(new_by_key.keys() - old_by_key.keys()),
        "max_regression_pct": max_regression,
    }


def export_document(store: ResultsWarehouse) -> dict:
    """The whole warehouse as one JSON-ready document (no payloads)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "commit": current_commit(),
        "row_count": len(store),
        "rows": store.rows(),
    }


def write_json_atomic(path: str, document: object) -> None:
    """Write ``document`` as JSON via write-then-rename.

    The temp file is unlinked on *any* failure — the try/finally
    discipline the old pickle writer lacked (it leaked ``.tmp.<pid>``
    files whenever the dump raised mid-write).
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)

"""The results warehouse: a concurrent-writer-safe SQLite sweep store.

This replaces the pickle-blob disk cache that backed
:class:`repro.harness.sweep.SweepRunner` — a directory of anonymous
``<digest>.pkl`` files whose loader swallowed *every* failure as a
cache miss, so a poisoned CI cache was indistinguishable from a cold
one.  The warehouse keeps the same keying (the digest of
``"<func>:<key>"``, which for scenario grids is the canonical spec
hash) but stores rows in one schema-versioned SQLite file:

- **WAL + ``BEGIN IMMEDIATE``** — parallel sweep workers, a second CI
  run and ``results query`` can share one warehouse: writers queue on
  the busy timeout instead of corrupting each other, readers never
  block.
- **Counted failures** — an unreadable payload, a torn row or a
  schema-version mismatch increments :attr:`corrupt` and emits a
  one-line warning; it is *never* silently conflated with a miss.
- **Typed columns** — the :class:`~repro.core.job.JobReport` metric
  surface (phase seconds, per-rank/staging/startup percentiles,
  engine, distribution label) plus spec JSON, git commit and
  timestamps, so stored sweeps are queryable and diffable across
  commits (:mod:`repro.results.query`).

A legacy pickle cache dir migrates into the warehouse on first open —
see :mod:`repro.results.migrate`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
import subprocess
import warnings
from datetime import datetime, timezone
from functools import lru_cache

from repro.errors import ConfigError
from repro.results.schema import (
    CREATE_INDEXES,
    CREATE_META,
    CREATE_RESULTS,
    PRAGMAS,
    SCHEMA_VERSION,
    WAREHOUSE_FILENAME,
    extract_columns,
    row_as_dict,
)


def cache_key(func_name: str, key: str) -> str:
    """The row digest for a (function, point-key) pair.

    Identical to the legacy pickle layer's file-name digest, so a
    migrated ``<digest>.pkl`` entry and a natively stored row for the
    same grid point are one and the same.
    """
    return hashlib.sha256(f"{func_name}:{key}".encode()).hexdigest()


@lru_cache(maxsize=1)
def current_commit() -> "str | None":
    """The git commit to stamp rows with (env override, then git)."""
    for env in ("PYNAMIC_REPRO_COMMIT", "GITHUB_SHA"):
        value = os.environ.get(env)
        if value:
            return value
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def resolve_warehouse_path(location: "str | os.PathLike[str]") -> str:
    """Map a ``cache_dir``-style location to the warehouse DB path.

    A directory (existing or to-be-created) holds the DB as
    ``warehouse.sqlite3`` inside it; a path that already names a file
    (or ends in a SQLite suffix) is used verbatim, so CLI users can
    point straight at a DB file.
    """
    path = os.fspath(location)
    if os.path.isfile(path) or path.endswith((".sqlite3", ".sqlite", ".db")):
        return path
    return os.path.join(path, WAREHOUSE_FILENAME)


class ResultsWarehouse:
    """One SQLite-backed store of evaluated sweep grid points.

    Opening is lazy and fork-aware: the connection is (re)established
    on first use in each process, so a runner forked into worker
    processes never shares a SQLite handle across the fork boundary.
    """

    def __init__(
        self, path: "str | os.PathLike[str]", readonly: bool = False
    ) -> None:
        self.path = resolve_warehouse_path(path)
        #: Read-only stores open the DB with a ``mode=ro`` URI: they
        #: never create files, never take write locks, and (under WAL)
        #: never queue behind a busy writer pool — the contract the
        #: service's query endpoints rely on.  A missing DB file is an
        #: empty store, not an error.
        self.readonly = readonly
        parent = os.path.dirname(self.path)
        if parent and not readonly:
            os.makedirs(parent, exist_ok=True)
        self._conn: sqlite3.Connection | None = None
        self._pid = -1
        #: Rows that existed but could not be read back: unpicklable
        #: payloads, torn rows, schema-version mismatches, unreadable
        #: legacy pickles.  Never folded into cache misses.
        self.corrupt = 0
        #: Legacy pickle entries absorbed on open.
        self.migrated = 0
        #: Rows written (inserts and overwrites).
        self.writes = 0

    @classmethod
    def for_cache_dir(
        cls,
        cache_dir: "str | os.PathLike[str]",
        readonly: bool = False,
    ) -> "ResultsWarehouse":
        """Open the warehouse for a sweep ``cache_dir``, absorbing any
        legacy pickle entries the directory still holds (read-write
        opens only — a read-only store never migrates or writes)."""
        store = cls(cache_dir, readonly=readonly)
        directory = os.path.dirname(store.path)
        if not readonly and directory and os.path.isdir(directory):
            from repro.results.migrate import migrate_pickle_dir

            migrate_pickle_dir(store, directory)
        return store

    # -- connection management --------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._conn is not None and self._pid == os.getpid():
            return self._conn
        self._conn = None
        self._pid = os.getpid()
        if self.readonly:
            self._conn = self._open()
            return self._conn
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError:
            # The file exists but is not a readable database (the
            # legacy failure mode this store exists to surface).
            self._quarantine("not a SQLite database")
            self._conn = self._open()
        return self._conn

    def _connect_opt(self) -> "sqlite3.Connection | None":
        """The connection, or None for a read-only store whose DB file
        does not exist yet (an empty store, not an error)."""
        if self.readonly and not os.path.exists(self.path):
            return None
        return self._connect()

    def _open(self) -> sqlite3.Connection:
        if self.readonly:
            from urllib.parse import quote

            uri = f"file:{quote(os.path.abspath(self.path))}?mode=ro"
            conn = sqlite3.connect(uri, uri=True, timeout=30.0)
            conn.row_factory = sqlite3.Row
            conn.isolation_level = None
            try:
                # No write pragmas: journal_mode/synchronous belong to
                # the writer; query_only hard-fails any stray write.
                conn.execute("PRAGMA query_only=ON")
                conn.execute("PRAGMA busy_timeout=30000")
                self._check_schema_readonly(conn)
            except sqlite3.DatabaseError:
                conn.close()
                raise
            return conn
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        # Autocommit mode: transactions are explicit BEGIN IMMEDIATE
        # blocks below, never the driver's implicit ones.
        conn.isolation_level = None
        try:
            for pragma in PRAGMAS:
                conn.execute(pragma)
            self._ensure_schema(conn)
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _check_schema_readonly(self, conn: sqlite3.Connection) -> None:
        """Read-only opens verify the version instead of migrating."""
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError as exc:
            raise ConfigError(
                f"results warehouse {self.path} has no schema "
                f"({exc}); open it read-write once to initialize"
            ) from exc
        version = int(row["value"]) if row is not None else None
        if version != SCHEMA_VERSION:
            raise ConfigError(
                f"results warehouse {self.path} is schema version "
                f"{version}, expected {SCHEMA_VERSION}; open it "
                f"read-write once to migrate"
            )

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        from repro.results.migrate import ensure_schema

        dropped = ensure_schema(conn)
        if dropped:
            self.corrupt += dropped
            warnings.warn(
                f"results warehouse {self.path}: dropped {dropped} row(s) "
                f"written by another schema version (counted as corrupt)",
                stacklevel=4,
            )

    def _quarantine(self, reason: str) -> None:
        """Discard an unreadable warehouse file and count it."""
        self.corrupt += 1
        warnings.warn(
            f"results warehouse {self.path} is unreadable ({reason}); "
            f"rebuilding it — prior rows are lost and will recompute",
            stacklevel=4,
        )
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(self.path + suffix)
            except OSError:
                pass

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None

    def __enter__(self) -> "ResultsWarehouse":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the cache surface the sweep runner drives -------------------------
    def load(self, func_name: str, key: str) -> "object | None":
        """The stored result for a grid point, or None on a miss.

        A row whose payload cannot be unpickled (report classes moved
        on, torn write survived a crash) is deleted, counted in
        :attr:`corrupt` and reported — the caller sees a miss and
        recomputes, but the poisoning is visible.
        """
        digest = cache_key(func_name, key)
        conn = self._connect_opt()
        if conn is None:
            return None
        try:
            row = conn.execute(
                "SELECT payload, func FROM results WHERE cache_key = ?",
                (digest,),
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            conn.close()
            self._conn = None
            if self.readonly:
                raise
            self._quarantine(str(exc))
            return None
        if row is None:
            return None
        result = self._unpickle(conn, digest, row["payload"], func_name, key)
        if result is None:
            return None
        if row["func"] is None and not self.readonly:
            # A row absorbed from the legacy pickle cache carries no
            # (func, key) metadata — backfill it now that we know it.
            self._backfill(conn, digest, func_name, key)
        return result

    def load_by_result_key(self, result_key: str) -> "dict | None":
        """The newest row whose ``result_key`` (spec hash) matches.

        Returns ``{"row": <row dict>, "result": <unpickled payload>}``
        or None — the direct-read surface behind the service's
        ``GET /v1/results/{spec_hash}`` endpoint.
        """
        conn = self._connect_opt()
        if conn is None:
            return None
        row = conn.execute(
            "SELECT * FROM results WHERE result_key = ?"
            " ORDER BY updated_at DESC, cache_key LIMIT 1",
            (result_key,),
        ).fetchone()
        if row is None:
            return None
        result = self._unpickle(
            conn, row["cache_key"], row["payload"], row["func"], result_key
        )
        if result is None:
            return None
        return {"row": row_as_dict(row), "result": result}

    def _unpickle(
        self,
        conn: sqlite3.Connection,
        digest: str,
        payload: bytes,
        func_name: "str | None",
        key: str,
    ) -> "object | None":
        try:
            return pickle.loads(payload)
        except Exception as exc:
            self.corrupt += 1
            warnings.warn(
                f"results warehouse {self.path}: corrupt payload for "
                f"{func_name}:{key[:16]} ({type(exc).__name__}: {exc}); "
                f"recomputing",
                stacklevel=3,
            )
            if not self.readonly:
                self._delete(conn, digest)
            return None

    def store(
        self,
        func_name: str,
        key: str,
        result: object,
        spec_json: "str | None" = None,
    ) -> None:
        """Insert (or overwrite) one grid point's result.

        The write is one ``BEGIN IMMEDIATE`` transaction: the reserved
        lock is taken up front so two processes storing the same key
        serialize on the busy timeout instead of deadlocking, and a
        failure mid-write rolls back — no torn rows, no leaked temp
        files (the discipline the pickle layer's ``.tmp.<pid>`` writer
        lacked).
        """
        if self.readonly:
            raise ConfigError(
                f"results warehouse {self.path} is open read-only"
            )
        digest = cache_key(func_name, key)
        payload = pickle.dumps(result)
        columns = extract_columns(result)
        metrics = columns.pop("metrics")
        now = _utcnow()
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                """
                INSERT INTO results (
                    cache_key, func, result_key, kind, payload, spec_json,
                    engine, distribution, n_tasks, n_nodes, cold,
                    total_s, startup_s, import_s, visit_s, mpi_s,
                    total_p50, total_p95, total_max, total_skew_s,
                    startup_p50, startup_p95, startup_max, startup_skew_s,
                    staging_p50, staging_p95, staging_max, staging_skew_s,
                    metrics_json, git_commit, created_at, updated_at
                ) VALUES (
                    :cache_key, :func, :result_key, :kind, :payload,
                    :spec_json,
                    :engine, :distribution, :n_tasks, :n_nodes, :cold,
                    :total_s, :startup_s, :import_s, :visit_s, :mpi_s,
                    :total_p50, :total_p95, :total_max, :total_skew_s,
                    :startup_p50, :startup_p95, :startup_max,
                    :startup_skew_s,
                    :staging_p50, :staging_p95, :staging_max,
                    :staging_skew_s,
                    :metrics_json, :git_commit, :created_at, :updated_at
                )
                ON CONFLICT (cache_key) DO UPDATE SET
                    func = excluded.func,
                    result_key = excluded.result_key,
                    kind = excluded.kind,
                    payload = excluded.payload,
                    spec_json = COALESCE(excluded.spec_json, spec_json),
                    engine = excluded.engine,
                    distribution = excluded.distribution,
                    n_tasks = excluded.n_tasks,
                    n_nodes = excluded.n_nodes,
                    cold = excluded.cold,
                    total_s = excluded.total_s,
                    startup_s = excluded.startup_s,
                    import_s = excluded.import_s,
                    visit_s = excluded.visit_s,
                    mpi_s = excluded.mpi_s,
                    total_p50 = excluded.total_p50,
                    total_p95 = excluded.total_p95,
                    total_max = excluded.total_max,
                    total_skew_s = excluded.total_skew_s,
                    startup_p50 = excluded.startup_p50,
                    startup_p95 = excluded.startup_p95,
                    startup_max = excluded.startup_max,
                    startup_skew_s = excluded.startup_skew_s,
                    staging_p50 = excluded.staging_p50,
                    staging_p95 = excluded.staging_p95,
                    staging_max = excluded.staging_max,
                    staging_skew_s = excluded.staging_skew_s,
                    metrics_json = excluded.metrics_json,
                    git_commit = excluded.git_commit,
                    updated_at = excluded.updated_at
                """,
                {
                    "cache_key": digest,
                    "func": func_name,
                    "result_key": key,
                    "kind": type(result).__name__,
                    "payload": payload,
                    "spec_json": spec_json,
                    "metrics_json": json.dumps(metrics, sort_keys=True),
                    "git_commit": current_commit(),
                    "created_at": now,
                    "updated_at": now,
                    **columns,
                },
            )
            conn.commit()
        except sqlite3.DatabaseError:
            conn.rollback()
            raise
        self.writes += 1

    def _backfill(
        self, conn: sqlite3.Connection, digest: str, func_name: str, key: str
    ) -> None:
        try:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "UPDATE results SET func = ?, result_key = ?, updated_at = ?"
                " WHERE cache_key = ? AND func IS NULL",
                (func_name, key, _utcnow(), digest),
            )
            conn.commit()
        except sqlite3.OperationalError:
            conn.rollback()  # metadata enrichment only — never worth a retry

    def _delete(self, conn: sqlite3.Connection, digest: str) -> None:
        try:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute("DELETE FROM results WHERE cache_key = ?", (digest,))
            conn.commit()
        except sqlite3.OperationalError:
            conn.rollback()

    # -- the query surface -------------------------------------------------
    def rows(
        self,
        func: "str | None" = None,
        engine: "str | None" = None,
        distribution: "str | None" = None,
        kind: "str | None" = None,
        commit: "str | None" = None,
        key_prefix: "str | None" = None,
    ) -> list[dict]:
        """Stored rows as dicts (payloads excluded), filtered by typed
        columns; ``key_prefix`` matches the result key (spec hash) or
        the row digest."""
        clauses, params = [], []
        for column, value in (
            ("func", func),
            ("engine", engine),
            ("distribution", distribution),
            ("kind", kind),
            ("git_commit", commit),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if key_prefix:
            clauses.append("(result_key LIKE ? OR cache_key LIKE ?)")
            params.extend([f"{key_prefix}%", f"{key_prefix}%"])
        sql = "SELECT * FROM results"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY n_nodes, distribution, cache_key"
        conn = self._connect_opt()
        if conn is None:
            return []
        return [row_as_dict(row) for row in conn.execute(sql, params)]

    def __len__(self) -> int:
        conn = self._connect_opt()
        if conn is None:
            return 0
        return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    @property
    def schema_version(self) -> int:
        row = self._connect().execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            raise ConfigError(
                f"results warehouse {self.path} has no schema version"
            )
        return int(row["value"])


# re-exported for callers that only need the DDL version
__all__ = [
    "ResultsWarehouse",
    "cache_key",
    "current_commit",
    "resolve_warehouse_path",
    "SCHEMA_VERSION",
    "CREATE_META",
    "CREATE_RESULTS",
    "CREATE_INDEXES",
]

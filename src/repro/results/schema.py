"""The warehouse schema: one versioned table of sweep results.

Every row is one evaluated grid point, keyed by the same digest the
legacy pickle cache used for its file names —
``sha256("<func>:<key>")`` where ``key`` is the canonical
:attr:`~repro.scenario.spec.ScenarioSpec.spec_hash` for scenario grids
— so a migrated pickle entry and a natively stored one are the same
row.  The pickled result object rides along as an opaque payload (the
exact value the sweep runner replays, bit-identical), while the
queryable surface is *typed columns*: engine, distribution label, task
and node counts, the per-rank/staging phase percentiles, plus the spec
JSON, the git commit and a timestamp.

``SCHEMA_VERSION`` is stamped into the ``meta`` table on creation and
checked on every open; a mismatched warehouse is rebuilt with its row
count *reported* (see :mod:`repro.results.migrate`), never silently
read.
"""

from __future__ import annotations

from typing import Mapping

#: Bump on any breaking change to the table layout below.  Opening a
#: warehouse written by a different version never reads its rows — they
#: are counted, reported and dropped by the migration layer.
SCHEMA_VERSION = 1

#: File name of the warehouse inside a ``cache_dir``.
WAREHOUSE_FILENAME = "warehouse.sqlite3"

#: Connection pragmas, WAL-first per the pragma-tuned SQLite exemplars:
#: WAL journaling gives concurrent sweep workers single-writer /
#: many-reader semantics without blocking readers, NORMAL sync is
#: durable enough for a cache (the entry is recomputable), and the
#: busy timeout makes competing ``BEGIN IMMEDIATE`` writers queue
#: instead of erroring out.
PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA temp_store=MEMORY",
    "PRAGMA cache_size=-4096",  # 4 MB page cache
    "PRAGMA busy_timeout=30000",
)

#: The typed metric columns (all nullable REAL/INTEGER/TEXT): what
#: ``results query`` filters and prints without unpickling payloads.
METRIC_COLUMNS = (
    "engine",
    "distribution",
    "n_tasks",
    "n_nodes",
    "cold",
    "total_s",
    "startup_s",
    "import_s",
    "visit_s",
    "mpi_s",
    "total_p50",
    "total_p95",
    "total_max",
    "total_skew_s",
    "startup_p50",
    "startup_p95",
    "startup_max",
    "startup_skew_s",
    "staging_p50",
    "staging_p95",
    "staging_max",
    "staging_skew_s",
)

CREATE_META = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
)
"""

CREATE_RESULTS = """
CREATE TABLE IF NOT EXISTS results (
    cache_key TEXT PRIMARY KEY,
    func TEXT,
    result_key TEXT,
    kind TEXT NOT NULL,
    payload BLOB NOT NULL,
    spec_json TEXT,
    engine TEXT,
    distribution TEXT,
    n_tasks INTEGER,
    n_nodes INTEGER,
    cold INTEGER,
    total_s REAL,
    startup_s REAL,
    import_s REAL,
    visit_s REAL,
    mpi_s REAL,
    total_p50 REAL,
    total_p95 REAL,
    total_max REAL,
    total_skew_s REAL,
    startup_p50 REAL,
    startup_p95 REAL,
    startup_max REAL,
    startup_skew_s REAL,
    staging_p50 REAL,
    staging_p95 REAL,
    staging_max REAL,
    staging_skew_s REAL,
    metrics_json TEXT,
    git_commit TEXT,
    created_at TEXT NOT NULL,
    updated_at TEXT NOT NULL
)
"""

CREATE_INDEXES = (
    "CREATE INDEX IF NOT EXISTS ix_results_func_key"
    " ON results (func, result_key)",
    "CREATE INDEX IF NOT EXISTS ix_results_commit ON results (git_commit)",
)


def _number(value: object) -> "float | int | None":
    """``value`` as a JSON/SQL-safe number (None for anything else)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    return None


def extract_columns(result: object) -> dict:
    """The typed-column view of one sweep result (duck-typed).

    :class:`~repro.core.job.JobReport`-shaped results fill the full
    per-rank/staging/startup percentile set; workload reports
    (:class:`~repro.workload.report.WorkloadReport`) map the shared
    columns onto the batch-queue view (makespan as ``total_max``, the
    worst tenant's pooled cold-start p95 as ``startup_p95``); staging
    summaries (``mitigation_scaled``'s :class:`StagingSummary`) fill
    the staging columns; anything else stores payload-only with an
    empty metric set.  Returns a dict of ``METRIC_COLUMNS`` values plus
    ``metrics_json`` — every numeric attribute the result exposes, so
    kind-specific extras (source reads, relay sends) stay queryable.
    """
    columns: dict[str, object] = {name: None for name in METRIC_COLUMNS}
    metrics: dict[str, object] = {}
    if hasattr(result, "rank0") and hasattr(result, "per_rank"):
        # JobReport: the full phase/percentile surface.
        for name in METRIC_COLUMNS:
            if name in ("engine", "distribution"):
                columns[name] = getattr(result, name, None)
                continue
            value = _number(getattr(result, name, None))
            columns[name] = value
            if value is not None:
                metrics[name] = value
        degradation = getattr(result, "degradation", None)
        if degradation is not None:
            for name in (
                "n_recoveries",
                "refetched_bytes",
                "link_retries",
            ):
                value = _number(getattr(degradation, name, None))
                if value is not None:
                    metrics[name] = value
            metrics["crashed_relays"] = len(
                getattr(degradation, "crashed_relays", ())
            )
    elif hasattr(result, "tenants") and hasattr(result, "jobs"):
        # WorkloadReport: the batch-queue view of the shared columns.
        # This arm must precede the StagingSummary one — workload
        # reports also expose ``makespan_s``.
        columns["engine"] = "workload"
        columns["n_nodes"] = _number(getattr(result, "n_nodes", None))
        columns["total_max"] = _number(getattr(result, "makespan_s", None))
        columns["startup_p95"] = _number(
            getattr(result, "startup_p95_s", None)
        )
        for name in (
            "n_jobs",
            "cores_per_node",
            "makespan_s",
            "fairness_spread",
            "wait_p95_s",
            "startup_p95_s",
            "engine_steps",
            "recovery_events",
            "refetched_bytes",
            "link_retries",
        ):
            value = _number(getattr(result, name, None))
            if value is not None:
                metrics[name] = value
        for tenant in getattr(result, "tenants", ()):
            for name in (
                "wait_p95_s",
                "startup_p95_s",
                "slowdown_p95",
            ):
                value = _number(getattr(tenant, name, None))
                if value is not None:
                    metrics[f"tenant[{tenant.name}].{name}"] = value
    elif hasattr(result, "makespan_s") and hasattr(result, "strategy"):
        # StagingSummary: staging-phase columns under the shared names.
        columns["distribution"] = result.strategy
        columns["n_nodes"] = _number(result.n_nodes)
        columns["staging_max"] = _number(result.makespan_s)
        columns["staging_p50"] = _number(getattr(result, "p50_s", None))
        columns["staging_p95"] = _number(getattr(result, "p95_s", None))
        columns["staging_skew_s"] = _number(getattr(result, "skew_s", None))
        for name in (
            "n_files",
            "staged_bytes",
            "makespan_s",
            "p50_s",
            "p95_s",
            "skew_s",
            "source_reads",
            "relay_sends",
            "warm_node_count",
            "recovery_events",
            "refetched_bytes",
            "crashed_relays",
            "link_retries",
        ):
            value = _number(getattr(result, name, None))
            if value is not None:
                metrics[name] = value
    columns["metrics"] = metrics
    return columns


def row_as_dict(row: Mapping) -> dict:
    """One warehouse row as a JSON-ready dict (payload blob excluded)."""
    import json

    data = {key: row[key] for key in row.keys() if key != "payload"}
    raw = data.pop("metrics_json", None)
    data["metrics"] = json.loads(raw) if raw else {}
    return data

"""Cache geometry configuration.

Defaults follow the AMD Opteron (K8) parts in the paper's Zeus cluster:
64 KiB 2-way L1 instruction and data caches and a 1 MiB 16-way unified L2,
all with 64-byte lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import KIB, MIB


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a single cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"cache parameters must be positive: {self}")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(f"line size must be a power of two: {self.line_bytes}")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ConfigError(
                f"size {self.size_bytes} is not divisible by ways*line "
                f"({self.ways}*{self.line_bytes})"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the full L1I/L1D/L2 hierarchy."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(64 * KIB, 2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(64 * KIB, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(1 * MIB, 16))

    def __post_init__(self) -> None:
        lines = {self.l1i.line_bytes, self.l1d.line_bytes, self.l2.line_bytes}
        if len(lines) != 1:
            raise ConfigError(f"all levels must share one line size, got {lines}")

    @property
    def line_bytes(self) -> int:
        """The common line size of all levels."""
        return self.l1d.line_bytes


def opteron_hierarchy() -> HierarchyConfig:
    """The default hierarchy modelling a Zeus node's Opteron core."""
    return HierarchyConfig()

"""Set-associative cache simulation.

This package models the Opteron-style cache hierarchy of the paper's Zeus
nodes (Section IV): split L1 instruction/data caches backed by a unified L2.
It is fed with the address trace produced by the simulated dynamic linker,
pager and function-visit engine, and exposes the miss counters that the
paper reads through PAPI (Table II).
"""

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.cache import Cache
from repro.cache.hierarchy import AccessKind, CacheHierarchy

__all__ = [
    "AccessKind",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "HierarchyConfig",
]

"""A single set-associative LRU cache level.

The simulator tracks tags only — no data are stored.  Writes are modelled
as write-allocate (a write to a missing line fetches it first), which is
what matters for the miss counts the paper reports.  Dirty write-back
traffic is not modelled; Table II only reports read/write *miss* counts.
"""

from __future__ import annotations

from repro.cache.config import CacheConfig


class Cache:
    """Tag-only set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._set_mask = config.n_sets - 1
        self._power_of_two_sets = (config.n_sets & (config.n_sets - 1)) == 0
        # One list of tags per set, most-recently-used first.
        self._sets: list[list[int]] = [[] for _ in range(config.n_sets)]
        self.accesses = 0
        self.misses = 0

    def _set_index(self, line_addr: int) -> int:
        if self._power_of_two_sets:
            return line_addr & self._set_mask
        return line_addr % self.config.n_sets

    def access(self, line_addr: int) -> bool:
        """Access one cache line (identified by ``addr >> log2(line)``).

        Returns True on hit.  On miss the line is installed, evicting the
        LRU way if the set is full.
        """
        self.accesses += 1
        tags = self._sets[self._set_index(line_addr)]
        tag = line_addr
        if tag in tags:
            # Move to MRU position.
            if tags[0] != tag:
                tags.remove(tag)
                tags.insert(0, tag)
            return True
        self.misses += 1
        tags.insert(0, tag)
        if len(tags) > self.config.ways:
            tags.pop()
        return False

    def contains(self, line_addr: int) -> bool:
        """True if the line is currently resident (no LRU update)."""
        return line_addr in self._sets[self._set_index(line_addr)]

    def invalidate_all(self) -> None:
        """Drop every resident line (counters are preserved)."""
        for tags in self._sets:
            tags.clear()

    def resident_lines(self) -> int:
        """Total number of lines currently resident."""
        return sum(len(tags) for tags in self._sets)

    @property
    def hits(self) -> int:
        """Number of accesses that hit."""
        return self.accesses - self.misses

    def reset_counters(self) -> None:
        """Zero the access/miss counters without touching cache contents."""
        self.accesses = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.config.size_bytes}B/{self.config.ways}w, "
            f"accesses={self.accesses}, misses={self.misses})"
        )

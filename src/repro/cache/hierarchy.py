"""The L1I / L1D / unified-L2 hierarchy with PAPI-style counters.

The hierarchy converts byte-granular accesses into per-line lookups and
returns the *cycle penalty* each access incurs, which the execution context
adds to the simulated clock.  Counters are cumulative; the PAPI facade in
:mod:`repro.perf.papi` snapshots them to produce per-phase deltas the way
the paper's instrumented driver does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cache.cache import Cache
from repro.cache.config import HierarchyConfig


class AccessKind(enum.Enum):
    """Which port an access uses (selects L1I vs. L1D)."""

    INSTRUCTION = "instruction"
    DATA_READ = "data_read"
    DATA_WRITE = "data_write"


@dataclass(frozen=True)
class MissCounts:
    """A snapshot of the hierarchy's cumulative counters."""

    l1d_accesses: int
    l1d_misses: int
    l1i_accesses: int
    l1i_misses: int
    l2_accesses: int
    l2_misses: int

    def minus(self, earlier: "MissCounts") -> "MissCounts":
        """Counter delta between this snapshot and an earlier one."""
        return MissCounts(
            l1d_accesses=self.l1d_accesses - earlier.l1d_accesses,
            l1d_misses=self.l1d_misses - earlier.l1d_misses,
            l1i_accesses=self.l1i_accesses - earlier.l1i_accesses,
            l1i_misses=self.l1i_misses - earlier.l1i_misses,
            l2_accesses=self.l2_accesses - earlier.l2_accesses,
            l2_misses=self.l2_misses - earlier.l2_misses,
        )


class CacheHierarchy:
    """Two-level hierarchy: split L1, unified L2, inclusive fills."""

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        l2_hit_penalty: int = 12,
        memory_penalty: int = 80,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.l1i = Cache(self.config.l1i, "L1I")
        self.l1d = Cache(self.config.l1d, "L1D")
        self.l2 = Cache(self.config.l2, "L2")
        #: Cycle penalties are *effective* (they assume some overlap with
        #: execution); see CostModel for the calibration discussion.
        self.l2_hit_penalty = l2_hit_penalty
        self.memory_penalty = memory_penalty
        self._line_shift = self.config.line_bytes.bit_length() - 1

    def access(self, address: int, size: int, kind: AccessKind) -> int:
        """Access ``size`` bytes at ``address``; return the cycle penalty."""
        if size <= 0:
            raise ValueError(f"access size must be positive, got {size}")
        first = address >> self._line_shift
        last = (address + size - 1) >> self._line_shift
        l1 = self.l1i if kind is AccessKind.INSTRUCTION else self.l1d
        penalty = 0
        for line in range(first, last + 1):
            if l1.access(line):
                continue
            if self.l2.access(line):
                penalty += self.l2_hit_penalty
            else:
                penalty += self.memory_penalty
        return penalty

    def line_count(self, size: int, address: int = 0) -> int:
        """Number of lines an access of ``size`` bytes at ``address`` spans."""
        first = address >> self._line_shift
        last = (address + size - 1) >> self._line_shift
        return last - first + 1

    def counters(self) -> MissCounts:
        """Snapshot the cumulative access/miss counters."""
        return MissCounts(
            l1d_accesses=self.l1d.accesses,
            l1d_misses=self.l1d.misses,
            l1i_accesses=self.l1i.accesses,
            l1i_misses=self.l1i.misses,
            l2_accesses=self.l2.accesses,
            l2_misses=self.l2.misses,
        )

    def flush(self) -> None:
        """Invalidate all levels (e.g. at process start)."""
        self.l1i.invalidate_all()
        self.l1d.invalidate_all()
        self.l2.invalidate_all()

"""Simulated storage substrate.

The paper's Table IV behaviour (cold vs. warm TotalView startup) is driven
by each node's *disk buffer cache* sitting in front of a shared NFS server;
its future-work section worries about NFS scalability for extreme-scale
DLL loading.  This package models exactly those pieces:

- :class:`FileImage` / :class:`FileStore` — named byte extents (the DLLs),
- :class:`NFSServer` — a shared server whose effective bandwidth degrades
  with the number of concurrently reading clients,
- :class:`ParallelFileSystem` — a striped, better-scaling alternative,
- :class:`BufferCache` — a per-node page-granular LRU cache; the first
  read of a DLL is charged to the backing file system, later reads are
  satisfied at memory-copy speed (the paper's observed ~2x warm speedup).
"""

from repro.fs.files import FileImage, FileStore
from repro.fs.buffercache import BufferCache
from repro.fs.nfs import NFSServer
from repro.fs.parallelfs import ParallelFileSystem

__all__ = [
    "BufferCache",
    "FileImage",
    "FileStore",
    "NFSServer",
    "ParallelFileSystem",
]

"""Earliest-gap reservation of a serial resource's timeline.

Shared by the timed queueing interfaces of :class:`NFSServer` (one
full-bandwidth pipe), :class:`ParallelFileSystem` (one timeline per
storage target) and the distribution overlay's per-node egress links.  A
reservation timeline is a sorted sequence of disjoint ``(start, end)``
windows during which the resource is transferring; a new request books
the earliest free window at or after its arrival — possibly in the
"past" of the latest booking, which keeps the outcome independent of the
order a coarse-grained scheduler issues requests in.

Two implementations coexist:

- :class:`ReservationTimeline` — the engine's hot-path structure.
  Booking bisects on the window starts (with an O(1) tail-append fast
  path for the overwhelmingly common in-order case), windows that abut
  within a float epsilon merge so long cold runs cannot accumulate
  thousands of zero-width slivers, and a maintained largest-free-gap
  suffix lets :meth:`earliest_gap` skip regions with no fitting hole
  instead of walking them.
- the ``legacy_*`` functions — the original O(n)-per-op list
  implementation, kept verbatim as the semantic reference: the
  hypothesis property suite pins the timeline against it and the
  ``perf/`` microbenchmarks report the speedup over it.

The module-level :func:`earliest_gap`, :func:`book`, :func:`reserve` and
:func:`reserve_ops` keep their original signatures and accept either a
:class:`ReservationTimeline` or a plain ``list[tuple[float, float]]``
(the fallback path, itself upgraded to bisect placement and epsilon
merging), so every consumer works unchanged.

The epsilon merge is observation-free by construction: two windows only
merge when the hole between them is at most ``merge_eps`` (default
1e-12 s), while every service time in the simulation is bounded below by
a physical constant orders of magnitude larger (one byte at NFS
bandwidth is ~4e-8 s; one RPC at the IOPS cap is 1e-5 s) — no booking
could ever have landed in the hole a merge erases, so merged and
unmerged timelines return bit-identical gap placements.
"""

from __future__ import annotations

from bisect import bisect_right
from math import ulp

#: Largest hole (seconds) that adjacent windows close over when merging.
#: Far below any service time the simulation can produce (see module
#: docstring), so merging never changes a booking decision.
DEFAULT_MERGE_EPS = 1e-12


class ReservationTimeline:
    """Sorted disjoint busy windows with O(log n) earliest-gap booking.

    The structure keeps three parallel lists: window starts, window ends
    and a suffix maximum of the free holes *after* each window
    (``_suffix[i]`` = the widest hole between consecutive windows at
    index >= i; the unbounded space after the last window is handled
    separately).  ``earliest_gap`` bisects to the first window that can
    constrain the request, then walks forward — but any region whose
    suffix maximum cannot fit the request is skipped in one hop to the
    tail, so a request too large for every interior hole resolves in
    O(log n) regardless of timeline length.

    The suffix is maintained incrementally: a tail append touches it
    only while the new hole exceeds existing maxima, and an interior
    booking (which can only *shrink* holes) repairs it backward until
    the stored values stabilize.
    """

    __slots__ = ("_starts", "_ends", "_suffix", "merge_eps", "bookings")

    def __init__(self, merge_eps: float = DEFAULT_MERGE_EPS) -> None:
        if merge_eps < 0.0:
            raise ValueError(f"merge_eps must be >= 0, got {merge_eps}")
        self._starts: list[float] = []
        self._ends: list[float] = []
        #: _suffix[i] = max(starts[j+1] - ends[j] for j in i..n-2), 0.0
        #: when no interior hole follows window i.
        self._suffix: list[float] = []
        self.merge_eps = merge_eps
        #: Total windows ever booked (merges collapse storage, not this).
        self.bookings = 0

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        """Stored (post-merge) window count."""
        return len(self._starts)

    @property
    def windows(self) -> list[tuple[float, float]]:
        """The stored windows as ``(start, end)`` tuples (a copy)."""
        return list(zip(self._starts, self._ends))

    @property
    def horizon_s(self) -> float:
        """End of the latest booked window (0.0 when empty)."""
        return self._ends[-1] if self._ends else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReservationTimeline({len(self._starts)} windows, "
            f"{self.bookings} bookings, horizon {self.horizon_s:.6f}s)"
        )

    # -- queries -------------------------------------------------------
    def earliest_gap(self, arrival: float, service: float) -> float:
        """Earliest start >= ``arrival`` of a free ``service``-long hole.

        Bit-identical to :func:`legacy_earliest_gap` over the same
        windows: the fit test is the same ``begin + service <= start``
        float comparison, and the suffix skip only prunes regions where
        that test could not succeed even under worst-case rounding (the
        threshold carries a 4-ulp guard).
        """
        ends = self._ends
        n = len(ends)
        if n == 0:
            return arrival
        last_end = ends[n - 1]
        if arrival >= last_end:
            return arrival
        starts = self._starts
        i = bisect_right(ends, arrival)
        # The hole between the arrival and the first constraining window.
        if arrival + service <= starts[i]:
            return arrival
        suffix = self._suffix
        # Conservative prune threshold: skipping is only allowed when no
        # interior hole could pass the exact fit test even with float
        # slop, so pruned and unpruned walks return identical results.
        guard = service - 4.0 * ulp(last_end)
        begin = ends[i]
        while i < n - 1:
            if suffix[i] < guard:
                return last_end
            if begin + service <= starts[i + 1]:
                return begin
            i += 1
            begin = ends[i]
        return begin

    # -- mutation ------------------------------------------------------
    def book(self, begin: float, service: float) -> None:
        """Insert a ``(begin, begin + service)`` busy window.

        The caller guarantees the window does not overlap an existing
        one (it came from :meth:`earliest_gap`, which only returns free
        holes).  Windows separated from a neighbour by at most
        ``merge_eps`` fuse with it.
        """
        end = begin + service
        self.bookings += 1
        starts, ends = self._starts, self._ends
        n = len(starts)
        eps = self.merge_eps
        # Tail fast path: the overwhelmingly common in-order booking.
        if n == 0:
            starts.append(begin)
            ends.append(end)
            self._suffix.append(0.0)
            return
        last_end = ends[n - 1]
        if begin >= last_end:
            if begin - last_end <= eps:
                ends[n - 1] = end  # extend the tail window in place
                return
            starts.append(begin)
            ends.append(end)
            self._suffix.append(0.0)
            self._repair_suffix(n - 1)
            return
        i = bisect_right(starts, begin)
        # Window i-1 ends at or before `begin`; window i starts after it.
        left = i > 0 and begin - ends[i - 1] <= eps
        right = i < n and starts[i] - end <= eps
        if left and right:
            ends[i - 1] = ends[i]
            del starts[i], ends[i], self._suffix[i]
            self._repair_suffix(i - 1)
        elif left:
            ends[i - 1] = end
            self._repair_suffix(i - 1)
        elif right:
            starts[i] = begin
            self._repair_suffix(i - 1)
        else:
            starts.insert(i, begin)
            ends.insert(i, end)
            self._suffix.insert(i, 0.0)
            self._repair_suffix(i)

    def reserve(self, arrival: float, service: float) -> float:
        """Book the earliest free window; returns its start time."""
        begin = self.earliest_gap(arrival, service)
        self.book(begin, service)
        return begin

    def reserve_ops(
        self, arrival: float, n_ops: int, iops_limit: float | None
    ) -> float:
        """Queueing delay before ``n_ops`` more RPCs can be accepted.

        See :func:`reserve_ops` for the model; this is its timeline
        method form.
        """
        if iops_limit is None or n_ops <= 0:
            return 0.0
        service = n_ops / iops_limit
        return self.reserve(arrival, service) - arrival

    # -- internals -----------------------------------------------------
    def _repair_suffix(self, index: int) -> None:
        """Re-establish the suffix-max invariant from ``index`` down.

        Walks toward the front recomputing ``_suffix[j] = max(hole(j),
        _suffix[j+1])`` and stops at the first entry whose stored value
        is already correct — every earlier entry is then correct too,
        because holes at other positions were untouched.
        """
        starts, ends, suffix = self._starts, self._ends, self._suffix
        n = len(starts)
        if index >= n:  # the mutated window was the last: nothing after
            return
        following = suffix[index + 1] if index + 1 < n else 0.0
        j = index
        while j >= 0:
            if j + 1 < n:
                hole = starts[j + 1] - ends[j]
                value = hole if hole > following else following
            else:
                value = 0.0
            if suffix[j] == value:
                return
            suffix[j] = value
            following = value
            j -= 1

    def _check_invariants(self) -> None:
        """Assert structural invariants (test/debug hook, not hot path)."""
        starts, ends, suffix = self._starts, self._ends, self._suffix
        n = len(starts)
        assert len(ends) == n and len(suffix) == n
        for j in range(n):
            assert starts[j] < ends[j], f"empty window at {j}"
            if j + 1 < n:
                assert ends[j] < starts[j + 1], f"overlap/abut at {j}"
            expected = max(
                (starts[k + 1] - ends[k] for k in range(j, n - 1)),
                default=0.0,
            )
            assert suffix[j] == expected, f"stale suffix at {j}"


# ---------------------------------------------------------------------
# The legacy O(n) list implementation, kept verbatim as the semantic
# reference for the property suite and the perf baseline.
# ---------------------------------------------------------------------
def legacy_earliest_gap(
    reservations: list[tuple[float, float]], arrival: float, service: float
) -> float:
    """Earliest start >= ``arrival`` of a free ``service``-long window."""
    begin = arrival
    for window_start, window_end in reservations:
        if begin + service <= window_start:
            return begin
        if window_end > begin:
            begin = window_end
    return begin


def legacy_book(
    reservations: list[tuple[float, float]], begin: float, service: float
) -> None:
    """Insert a (begin, begin + service) window, keeping the list sorted."""
    for index, (window_start, _) in enumerate(reservations):
        if begin < window_start:
            reservations.insert(index, (begin, begin + service))
            return
    reservations.append((begin, begin + service))


def legacy_reserve(
    reservations: list[tuple[float, float]], arrival: float, service: float
) -> float:
    """Book the earliest free window; returns its start time."""
    begin = legacy_earliest_gap(reservations, arrival, service)
    legacy_book(reservations, begin, service)
    return begin


# ---------------------------------------------------------------------
# The stable module-level API: original signatures, either container.
# ---------------------------------------------------------------------
def earliest_gap(
    reservations: "ReservationTimeline | list[tuple[float, float]]",
    arrival: float,
    service: float,
) -> float:
    """Earliest start >= ``arrival`` of a free ``service``-long window."""
    if type(reservations) is list:
        return legacy_earliest_gap(reservations, arrival, service)
    return reservations.earliest_gap(arrival, service)


def book(
    reservations: "ReservationTimeline | list[tuple[float, float]]",
    begin: float,
    service: float,
) -> None:
    """Insert a (begin, begin + service) window, keeping windows sorted.

    The plain-list fallback places with a bisect instead of the old
    linear scan and merges a window that abuts its left neighbour within
    ``DEFAULT_MERGE_EPS`` — same observable bookings, bounded growth.
    """
    if type(reservations) is not list:
        reservations.book(begin, service)
        return
    end = begin + service
    n = len(reservations)
    if n:
        last_start, last_end = reservations[-1]
        if begin >= last_end:  # tail fast path
            if begin - last_end <= DEFAULT_MERGE_EPS:
                reservations[-1] = (last_start, end)
            else:
                reservations.append((begin, end))
            return
    index = bisect_right(reservations, (begin, float("inf")))
    if index > 0:
        left_start, left_end = reservations[index - 1]
        if 0.0 <= begin - left_end <= DEFAULT_MERGE_EPS:
            if index < n and reservations[index][0] - end <= DEFAULT_MERGE_EPS:
                reservations[index - 1] = (left_start, reservations[index][1])
                del reservations[index]
            else:
                reservations[index - 1] = (left_start, end)
            return
    if index < n and reservations[index][0] - end <= DEFAULT_MERGE_EPS:
        reservations[index] = (begin, reservations[index][1])
        return
    reservations.insert(index, (begin, end))


def reserve(
    reservations: "ReservationTimeline | list[tuple[float, float]]",
    arrival: float,
    service: float,
) -> float:
    """Book the earliest free window; returns its start time."""
    if type(reservations) is not list:
        return reservations.reserve(arrival, service)
    begin = legacy_earliest_gap(reservations, arrival, service)
    book(reservations, begin, service)
    return begin


def reserve_ops(
    reservations: "ReservationTimeline | list[tuple[float, float]]",
    arrival: float,
    n_ops: int,
    iops_limit: float | None,
) -> float:
    """Queueing delay before a server limited to ``iops_limit`` RPCs/s can
    accept ``n_ops`` more requests arriving at ``arrival``.

    Each RPC occupies ``1 / iops_limit`` seconds of server request
    processing on a serial ops timeline — the saturation the per-request
    latency alone cannot express, because latency pipelines across
    clients without limit.  An unloaded request starts immediately
    (delay 0), so the unloaded completion time still matches the
    analytic model; under a storm of small reads the delay grows with
    the backlog.  ``iops_limit=None`` disables the term.
    """
    if iops_limit is None or n_ops <= 0:
        return 0.0
    service = n_ops / iops_limit
    begin = reserve(reservations, arrival, service)
    return begin - arrival

"""Earliest-gap reservation of a serial resource's timeline.

Shared by the timed queueing interfaces of :class:`NFSServer` (one
full-bandwidth pipe) and :class:`ParallelFileSystem` (one timeline per
storage target).  A reservation list is a sorted sequence of disjoint
``(start, end)`` windows during which the resource is transferring; a
new request books the earliest free window at or after its arrival —
possibly in the "past" of the latest booking, which keeps the outcome
independent of the order a coarse-grained scheduler issues requests in.
"""

from __future__ import annotations


def earliest_gap(
    reservations: list[tuple[float, float]], arrival: float, service: float
) -> float:
    """Earliest start >= ``arrival`` of a free ``service``-long window."""
    begin = arrival
    for window_start, window_end in reservations:
        if begin + service <= window_start:
            return begin
        if window_end > begin:
            begin = window_end
    return begin


def book(
    reservations: list[tuple[float, float]], begin: float, service: float
) -> None:
    """Insert a (begin, begin + service) window, keeping the list sorted."""
    for index, (window_start, _) in enumerate(reservations):
        if begin < window_start:
            reservations.insert(index, (begin, begin + service))
            return
    reservations.append((begin, begin + service))


def reserve(
    reservations: list[tuple[float, float]], arrival: float, service: float
) -> float:
    """Book the earliest free window; returns its start time."""
    begin = earliest_gap(reservations, arrival, service)
    book(reservations, begin, service)
    return begin


def reserve_ops(
    reservations: list[tuple[float, float]],
    arrival: float,
    n_ops: int,
    iops_limit: float | None,
) -> float:
    """Queueing delay before a server limited to ``iops_limit`` RPCs/s can
    accept ``n_ops`` more requests arriving at ``arrival``.

    Each RPC occupies ``1 / iops_limit`` seconds of server request
    processing on a serial ops timeline — the saturation the per-request
    latency alone cannot express, because latency pipelines across
    clients without limit.  An unloaded request starts immediately
    (delay 0), so the unloaded completion time still matches the
    analytic model; under a storm of small reads the delay grows with
    the backlog.  ``iops_limit=None`` disables the term.
    """
    if iops_limit is None or n_ops <= 0:
        return 0.0
    service = n_ops / iops_limit
    begin = reserve(reservations, arrival, service)
    return begin - arrival

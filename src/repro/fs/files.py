"""File images and the global file store.

A :class:`FileImage` is a named byte extent living on some backing file
system.  The generator publishes each built shared object as a file image;
the loader, the dynamic linker's demand pager and the simulated debugger
all read those images through a node's buffer cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol

from repro.errors import FileNotFoundInStoreError, FileSystemError


class BackingFileSystem(Protocol):
    """Anything that can serve raw reads (NFS, parallel FS, local disk)."""

    name: str

    def read_seconds(self, n_bytes: int, n_ops: int = 1) -> float:
        """Seconds needed to read ``n_bytes`` in ``n_ops`` requests."""
        ...  # pragma: no cover - protocol


@dataclass
class FileImage:
    """A simulated file: a path, a size and the file system it lives on."""

    path: str
    size_bytes: int
    filesystem: BackingFileSystem
    #: Optional named sub-extents (e.g. ELF sections) as offset/size pairs,
    #: letting tools read "just the symbol table" of a DLL.
    extents: dict[str, tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise FileSystemError(f"negative file size for {self.path!r}")
        for name, (offset, size) in self.extents.items():
            if offset < 0 or size < 0 or offset + size > self.size_bytes:
                raise FileSystemError(
                    f"extent {name!r} ({offset}+{size}) outside file "
                    f"{self.path!r} of {self.size_bytes} bytes"
                )

    def add_extent(self, name: str, offset: int, size: int) -> None:
        """Register a named sub-extent of the file."""
        if offset < 0 or size < 0 or offset + size > self.size_bytes:
            raise FileSystemError(
                f"extent {name!r} ({offset}+{size}) outside file "
                f"{self.path!r} of {self.size_bytes} bytes"
            )
        self.extents[name] = (offset, size)

    def extent(self, name: str) -> tuple[int, int]:
        """Look up a named extent; raises FileSystemError if missing."""
        try:
            return self.extents[name]
        except KeyError:
            raise FileSystemError(
                f"file {self.path!r} has no extent named {name!r}"
            ) from None


class FileStore:
    """A flat namespace of :class:`FileImage` objects."""

    def __init__(self) -> None:
        self._files: dict[str, FileImage] = {}

    def add(self, image: FileImage) -> FileImage:
        """Register a file image; re-adding the same path overwrites it."""
        self._files[image.path] = image
        return image

    def get(self, path: str) -> FileImage:
        """Fetch a file image by path."""
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInStoreError(path) from None

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)

    def __iter__(self) -> Iterator[FileImage]:
        return iter(self._files.values())

    def total_bytes(self) -> int:
        """Sum of all file sizes in the store."""
        return sum(image.size_bytes for image in self._files.values())

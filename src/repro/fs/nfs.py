"""A shared NFS server with client contention.

Section II.B.2 of the paper notes that "an NFS file system could not
support the level of parallel accesses" required when every node of an
extreme-scale job demand-loads hundreds of DLLs.  We model the server as a
fixed-bandwidth pipe with a per-request latency; when ``concurrent_clients``
nodes read at once, each sees the bandwidth divided among them (up to a
server-side concurrency cap beyond which requests simply queue).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.faults.brownout import reserve_degraded, window_triples
from repro.fs.reservation import ReservationTimeline


class NFSServer:
    """Fixed-capacity NFS server shared by all nodes of the cluster."""

    def __init__(
        self,
        name: str = "nfs",
        bandwidth_bps: float = 25e6,
        latency_s: float = 0.002,
        max_concurrency: int = 64,
        iops_limit: float | None = 20_000.0,
    ) -> None:
        if bandwidth_bps <= 0 or latency_s < 0 or max_concurrency < 1:
            raise ConfigError("invalid NFS parameters")
        if iops_limit is not None and iops_limit <= 0:
            raise ConfigError(f"IOPS limit must be positive, got {iops_limit}")
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.max_concurrency = max_concurrency
        #: Server-side RPC processing rate (requests/second) for the timed
        #: queueing interface; ``None`` lets RPCs pipeline without limit.
        self.iops_limit = iops_limit
        self.concurrent_clients = 1
        self.bytes_served = 0
        self.requests_served = 0
        #: Disjoint, sorted (start, end) windows during which the server
        #: pipe is transferring — state of the timed queueing interface
        #: used by the multi-rank engine (:meth:`request_at`).
        self._reservations = ReservationTimeline()
        #: Windows during which the server's RPC machinery is occupied
        #: (the IOPS-saturation term for request-heavy small reads).
        self._op_reservations = ReservationTimeline()
        #: Declared brownout windows (a set: identical windows declared
        #: by several tenants are one event) plus the derived sorted
        #: capacity-multiplier triples the degraded booking math reads.
        self._brownouts: set = set()
        self._bw_windows: tuple = ()
        self._op_windows: tuple = ()

    def set_concurrency(self, clients: int) -> None:
        """Declare how many nodes are reading simultaneously."""
        if clients < 1:
            raise ConfigError(f"client count must be >= 1, got {clients}")
        self.concurrent_clients = clients

    def effective_bandwidth_bps(self) -> float:
        """Per-client bandwidth under the current contention level."""
        return self.bandwidth_bps / float(self.concurrent_clients)

    def read_seconds(self, n_bytes: int, n_ops: int = 1) -> float:
        """Seconds for one client to read ``n_bytes`` in ``n_ops`` requests.

        Latency scales with the queue depth once the server's concurrency
        cap is exceeded (requests wait behind other clients' requests).
        """
        if n_bytes < 0 or n_ops < 0:
            raise ConfigError("read sizes must be non-negative")
        queue_factor = max(
            1.0, self.concurrent_clients / float(self.max_concurrency)
        )
        self.bytes_served += n_bytes
        self.requests_served += n_ops
        transfer = n_bytes / self.effective_bandwidth_bps()
        return n_ops * self.latency_s * queue_factor + transfer

    # -- timed queueing interface (multi-rank engine) ---------------------
    def reset_queue(self) -> None:
        """Forget queued work (and brownouts) — call once per simulated job."""
        self._reservations = ReservationTimeline()
        self._op_reservations = ReservationTimeline()
        self._brownouts = set()
        self._bw_windows = ()
        self._op_windows = ()

    def add_brownouts(self, windows) -> None:
        """Declare degraded-capacity windows for the coming job.

        Each window is a :class:`repro.faults.BrownoutWindow` during
        which the server runs at a fraction of its nominal bandwidth
        and/or IOPS.  An identical window declared twice (two tenants
        naming the same cluster-wide event on the shared server) is
        idempotent; *distinct* windows that overlap in time raise
        :class:`ConfigError` — there is no composition rule for stacked
        degradations.  :meth:`reset_queue` clears them.
        """
        for window in windows:
            if window in self._brownouts:
                continue
            for other in self._brownouts:
                if window.start_s < other.end_s and other.start_s < window.end_s:
                    raise ConfigError(
                        f"{self.name}: brownout window "
                        f"[{window.start_s}, {window.end_s}) overlaps "
                        f"[{other.start_s}, {other.end_s})"
                    )
            self._brownouts.add(window)
        self._bw_windows = window_triples(self._brownouts, "bandwidth_factor")
        self._op_windows = window_triples(self._brownouts, "iops_factor")

    def timeline_stats(self) -> tuple[int, int]:
        """``(stored_windows, total_bookings)`` over the queue timelines."""
        return (
            len(self._reservations) + len(self._op_reservations),
            self._reservations.bookings + self._op_reservations.bookings,
        )

    def request_at(self, start_s: float, n_bytes: int, n_ops: int = 1) -> float:
        """A read request arriving at virtual time ``start_s``; returns its
        completion time.

        Per-request protocol latency pipelines across clients (the server
        processes RPCs concurrently, matching the analytic model below its
        concurrency cap) — but only up to the server's ``iops_limit``:
        each RPC occupies a slice of a serial request-processing timeline,
        so a storm of small reads queues at the server even when the data
        pipe is idle.  The data *transfer* then reserves the single
        full-bandwidth pipe: it books the earliest free window at or after
        its arrival.  Concurrent clients therefore see the analytic
        model's aggregate throughput plus the per-client *skew* (early
        arrivals finish early) that model cannot express — and because a
        window can be booked in the past of the latest reservation, the
        outcome is independent of the order in which a scheduler's
        coarse-grained steps happen to issue the requests.  With one
        client and no backlog this equals :meth:`read_seconds` at
        concurrency 1 exactly.
        """
        if n_bytes < 0 or n_ops < 0:
            raise ConfigError("read sizes must be non-negative")
        if start_s < 0:
            raise ConfigError(f"negative request time: {start_s}")
        self.bytes_served += n_bytes
        self.requests_served += n_ops
        if self._op_windows and self.iops_limit is not None and n_ops > 0:
            begin, _ = reserve_degraded(
                self._op_reservations,
                start_s,
                n_ops / self.iops_limit,
                self._op_windows,
            )
            queue_delay = begin - start_s
        else:
            queue_delay = self._op_reservations.reserve_ops(
                start_s, n_ops, self.iops_limit
            )
        arrival = start_s + queue_delay + n_ops * self.latency_s
        service = n_bytes / self.bandwidth_bps
        if service <= 0.0:
            return arrival
        if self._bw_windows:
            _, end = reserve_degraded(
                self._reservations, arrival, service, self._bw_windows
            )
            return end
        return self._reservations.reserve(arrival, service) + service

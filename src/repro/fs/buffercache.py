"""Per-node disk buffer cache.

Table IV's warm startup is "about twice as fast as the Cold Startup ...
due to the disk buffer cache memory: the first invocation brings all the
DLLs into the disk cache of each node".  The cache here is page-granular
LRU: a read first partitions its page range into resident and missing
pages, charges missing pages to the file's backing file system, and serves
resident pages at memory-copy bandwidth.

Internals: resident pages live in one insertion-ordered ``dict`` (oldest
first — a plain dict is an LRU when touching re-inserts and eviction pops
the first key), keyed by a single integer ``path_base + page_index``
where each distinct path gets a ``path_base`` of ``id << _PAGE_BITS``.
Integer keys matter at scale: a thousand-node cluster holds tens of
millions of resident pages, and unlike ``(path, page)`` tuples, ints are
invisible to the cyclic garbage collector and a page span is just a
``range`` — no per-page allocation at all on the hot paths.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.fs.files import FileImage
from repro.units import GIB

#: Bits reserved for the page index inside a key (4 KiB pages -> files up
#: to 2^40 pages = 4 PiB before path bases could collide).
_PAGE_BITS = 40


class BufferCache:
    """Page-granular LRU cache of file contents, one per node."""

    def __init__(
        self,
        capacity_bytes: int = 8 * GIB,
        page_bytes: int = 4096,
        hit_bandwidth_bps: float = 3e9,
        hit_latency_s: float = 2e-7,
    ) -> None:
        if capacity_bytes <= 0 or page_bytes <= 0:
            raise ConfigError("capacity and page size must be positive")
        if capacity_bytes < page_bytes:
            raise ConfigError("capacity smaller than a single page")
        self.capacity_pages = capacity_bytes // page_bytes
        self.page_bytes = page_bytes
        self.hit_bandwidth_bps = hit_bandwidth_bps
        self.hit_latency_s = hit_latency_s
        # Maps (path_base + page_index) -> None in LRU order (oldest
        # first); see the module docstring for the key scheme.
        self._pages: dict[int, None] = {}
        # path -> path_base (already shifted by _PAGE_BITS).
        self._path_bases: dict[str, int] = {}
        self.hits = 0
        self.misses = 0

    def _path_base(self, path: str) -> int:
        """The key base for ``path``, allocated on first use."""
        bases = self._path_bases
        base = bases.get(path)
        if base is None:
            base = len(bases) << _PAGE_BITS
            bases[path] = base
        return base

    def _page_range(self, offset: int, size: int) -> range:
        first = offset // self.page_bytes
        last = (offset + size - 1) // self.page_bytes
        return range(first, last + 1)

    def read(self, image: FileImage, offset: int = 0, size: int | None = None) -> float:
        """Read a byte range of ``image``; return the simulated seconds.

        Missing pages are fetched from ``image.filesystem`` in one batched
        request (the kernel's read-ahead), then inserted.  Resident pages
        cost only a memory copy.
        """
        return self.read_with(image, offset, size, image.filesystem.read_seconds)

    def read_with(
        self,
        image: FileImage,
        offset: int = 0,
        size: int | None = None,
        fetch: "Callable[[int, int], float] | None" = None,
    ) -> float:
        """Like :meth:`read`, but missing pages are charged via ``fetch``.

        ``fetch(n_bytes, n_ops)`` returns the seconds the backing store
        takes for the miss traffic.  The multi-rank engine passes a closure
        that routes the request through the file system's timed FIFO queue
        at the reading rank's current virtual time, so contention between
        ranks emerges instead of being charged analytically.
        """
        if fetch is None:
            fetch = image.filesystem.read_seconds
        if size is None:
            size = image.size_bytes - offset
        if size == 0:
            return 0.0
        if offset < 0 or size < 0 or offset + size > image.size_bytes:
            raise ConfigError(
                f"read of {offset}+{size} outside {image.path!r} "
                f"({image.size_bytes} bytes)"
            )
        pages = self._pages
        page_bytes = self.page_bytes
        base = self._path_base(image.path)
        first = offset // page_bytes
        last = (offset + size - 1) // page_bytes
        n_range = last - first + 1
        keys = range(base + first, base + last + 1)
        missing_pages = 0
        if len(pages) + n_range <= self.capacity_pages:
            # Eviction-free fast path (the overwhelmingly common case:
            # node caches hold the whole working set): counters and LRU
            # order come out identical to the general loop below, so
            # this is a speedup, not a model change.  Spans that are
            # entirely missing or entirely resident — nearly every read
            # in practice — run at C speed.
            contains = pages.__contains__
            if not any(map(contains, keys)):
                pages.update(dict.fromkeys(keys))
                missing_pages = n_range
            elif all(map(contains, keys)):
                for key in keys:  # LRU touch: re-insert at the tail
                    del pages[key]
                    pages[key] = None
            else:
                for key in keys:
                    if contains(key):
                        del pages[key]
                        pages[key] = None
                    else:
                        missing_pages += 1
                        pages[key] = None
            self.hits += n_range - missing_pages
            self.misses += missing_pages
        else:
            for key in keys:
                if key in pages:
                    del pages[key]
                    pages[key] = None
                    self.hits += 1
                else:
                    self.misses += 1
                    missing_pages += 1
                    pages[key] = None
                    if len(pages) > self.capacity_pages:
                        del pages[next(iter(pages))]  # evict the oldest
        seconds = self.hit_latency_s + size / self.hit_bandwidth_bps
        if missing_pages:
            seconds += fetch(missing_pages * self.page_bytes, 1)
        return seconds

    def install(self, image: FileImage, offset: int = 0, size: int | None = None) -> int:
        """Mark a byte range resident without charging any fetch time.

        Models data arriving outside the demand-read path — a staging
        daemon landing relayed bytes in the page cache as they come off
        the wire (the copy overlaps the transfer, so the link time
        already paid for it).  Returns the number of pages newly
        installed; hit/miss counters are untouched.
        """
        if size is None:
            size = image.size_bytes - offset
        if size == 0:
            return 0
        if offset < 0 or size < 0 or offset + size > image.size_bytes:
            raise ConfigError(
                f"install of {offset}+{size} outside {image.path!r} "
                f"({image.size_bytes} bytes)"
            )
        pages = self._pages
        page_bytes = self.page_bytes
        base = self._path_base(image.path)
        first = offset // page_bytes
        last = (offset + size - 1) // page_bytes
        n_range = last - first + 1
        keys = range(base + first, base + last + 1)
        installed = 0
        if len(pages) + n_range <= self.capacity_pages:
            # Eviction-free fast path; see read_with.
            contains = pages.__contains__
            if not any(map(contains, keys)):
                pages.update(dict.fromkeys(keys))
                installed = n_range
            elif all(map(contains, keys)):
                for key in keys:
                    del pages[key]
                    pages[key] = None
            else:
                for key in keys:
                    if contains(key):
                        del pages[key]
                        pages[key] = None
                    else:
                        installed += 1
                        pages[key] = None
        else:
            for key in keys:
                if key in pages:
                    del pages[key]
                    pages[key] = None
                    continue
                installed += 1
                pages[key] = None
                if len(pages) > self.capacity_pages:
                    del pages[next(iter(pages))]  # evict the oldest
        return installed

    def contains(self, image: FileImage, offset: int = 0, size: int | None = None) -> bool:
        """True if the entire byte range is resident."""
        if size is None:
            size = image.size_bytes - offset
        if size == 0:
            return True
        base = self._path_bases.get(image.path)
        if base is None:
            return False
        pages = self._pages
        for page in self._page_range(offset, size):
            if base + page not in pages:
                return False
        return True

    def resident_bytes(self) -> int:
        """Bytes currently cached."""
        return len(self._pages) * self.page_bytes

    def drop(self) -> None:
        """Evict everything — used to model a cold (first) invocation."""
        self._pages.clear()

    def reset_counters(self) -> None:
        """Zero hit/miss statistics without evicting pages."""
        self.hits = 0
        self.misses = 0

"""Per-node disk buffer cache.

Table IV's warm startup is "about twice as fast as the Cold Startup ...
due to the disk buffer cache memory: the first invocation brings all the
DLLs into the disk cache of each node".  The cache here is page-granular
LRU: a read first partitions its page range into resident and missing
pages, charges missing pages to the file's backing file system, and serves
resident pages at memory-copy bandwidth.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.errors import ConfigError
from repro.fs.files import FileImage
from repro.units import GIB


class BufferCache:
    """Page-granular LRU cache of file contents, one per node."""

    def __init__(
        self,
        capacity_bytes: int = 8 * GIB,
        page_bytes: int = 4096,
        hit_bandwidth_bps: float = 3e9,
        hit_latency_s: float = 2e-7,
    ) -> None:
        if capacity_bytes <= 0 or page_bytes <= 0:
            raise ConfigError("capacity and page size must be positive")
        if capacity_bytes < page_bytes:
            raise ConfigError("capacity smaller than a single page")
        self.capacity_pages = capacity_bytes // page_bytes
        self.page_bytes = page_bytes
        self.hit_bandwidth_bps = hit_bandwidth_bps
        self.hit_latency_s = hit_latency_s
        # Maps (path, page_index) -> None in LRU order (oldest first).
        self._pages: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _page_range(self, offset: int, size: int) -> range:
        first = offset // self.page_bytes
        last = (offset + size - 1) // self.page_bytes
        return range(first, last + 1)

    def read(self, image: FileImage, offset: int = 0, size: int | None = None) -> float:
        """Read a byte range of ``image``; return the simulated seconds.

        Missing pages are fetched from ``image.filesystem`` in one batched
        request (the kernel's read-ahead), then inserted.  Resident pages
        cost only a memory copy.
        """
        return self.read_with(image, offset, size, image.filesystem.read_seconds)

    def read_with(
        self,
        image: FileImage,
        offset: int = 0,
        size: int | None = None,
        fetch: "Callable[[int, int], float] | None" = None,
    ) -> float:
        """Like :meth:`read`, but missing pages are charged via ``fetch``.

        ``fetch(n_bytes, n_ops)`` returns the seconds the backing store
        takes for the miss traffic.  The multi-rank engine passes a closure
        that routes the request through the file system's timed FIFO queue
        at the reading rank's current virtual time, so contention between
        ranks emerges instead of being charged analytically.
        """
        if fetch is None:
            fetch = image.filesystem.read_seconds
        if size is None:
            size = image.size_bytes - offset
        if size == 0:
            return 0.0
        if offset < 0 or size < 0 or offset + size > image.size_bytes:
            raise ConfigError(
                f"read of {offset}+{size} outside {image.path!r} "
                f"({image.size_bytes} bytes)"
            )
        missing_pages = 0
        for page in self._page_range(offset, size):
            key = (image.path, page)
            if key in self._pages:
                self._pages.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
                missing_pages += 1
                self._pages[key] = None
                if len(self._pages) > self.capacity_pages:
                    self._pages.popitem(last=False)
        seconds = self.hit_latency_s + size / self.hit_bandwidth_bps
        if missing_pages:
            seconds += fetch(missing_pages * self.page_bytes, 1)
        return seconds

    def install(self, image: FileImage, offset: int = 0, size: int | None = None) -> int:
        """Mark a byte range resident without charging any fetch time.

        Models data arriving outside the demand-read path — a staging
        daemon landing relayed bytes in the page cache as they come off
        the wire (the copy overlaps the transfer, so the link time
        already paid for it).  Returns the number of pages newly
        installed; hit/miss counters are untouched.
        """
        if size is None:
            size = image.size_bytes - offset
        if size == 0:
            return 0
        if offset < 0 or size < 0 or offset + size > image.size_bytes:
            raise ConfigError(
                f"install of {offset}+{size} outside {image.path!r} "
                f"({image.size_bytes} bytes)"
            )
        installed = 0
        for page in self._page_range(offset, size):
            key = (image.path, page)
            if key in self._pages:
                self._pages.move_to_end(key)
                continue
            installed += 1
            self._pages[key] = None
            if len(self._pages) > self.capacity_pages:
                self._pages.popitem(last=False)
        return installed

    def contains(self, image: FileImage, offset: int = 0, size: int | None = None) -> bool:
        """True if the entire byte range is resident."""
        if size is None:
            size = image.size_bytes - offset
        if size == 0:
            return True
        return all(
            (image.path, page) in self._pages
            for page in self._page_range(offset, size)
        )

    def resident_bytes(self) -> int:
        """Bytes currently cached."""
        return len(self._pages) * self.page_bytes

    def drop(self) -> None:
        """Evict everything — used to model a cold (first) invocation."""
        self._pages.clear()

    def reset_counters(self) -> None:
        """Zero hit/miss statistics without evicting pages."""
        self.hits = 0
        self.misses = 0

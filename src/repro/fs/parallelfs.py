"""A striped parallel file system (Lustre-like).

The paper contrasts the "common practice of staging the executable onto the
NFS file system while having input data and output on a parallel file
system".  The parallel FS scales with clients up to the number of object
storage targets, making it the natural comparison point in the NFS
scalability experiment (DESIGN.md S3).
"""

from __future__ import annotations

from repro.errors import ConfigError


class ParallelFileSystem:
    """Aggregate-bandwidth file system striped over ``n_targets`` servers."""

    def __init__(
        self,
        name: str = "pfs",
        aggregate_bandwidth_bps: float = 400e6,
        latency_s: float = 0.0005,
        n_targets: int = 16,
    ) -> None:
        if aggregate_bandwidth_bps <= 0 or latency_s < 0 or n_targets < 1:
            raise ConfigError("invalid parallel FS parameters")
        self.name = name
        self.aggregate_bandwidth_bps = aggregate_bandwidth_bps
        self.latency_s = latency_s
        self.n_targets = n_targets
        self.concurrent_clients = 1
        self.bytes_served = 0
        self.requests_served = 0

    def set_concurrency(self, clients: int) -> None:
        """Declare how many nodes are reading simultaneously."""
        if clients < 1:
            raise ConfigError(f"client count must be >= 1, got {clients}")
        self.concurrent_clients = clients

    def effective_bandwidth_bps(self) -> float:
        """Per-client bandwidth: clients share targets, not one pipe.

        Until the client count exceeds the target count every client gets a
        full stripe's bandwidth; past that, clients share proportionally.
        """
        per_target = self.aggregate_bandwidth_bps / self.n_targets
        if self.concurrent_clients <= self.n_targets:
            return per_target
        return self.aggregate_bandwidth_bps / self.concurrent_clients

    def read_seconds(self, n_bytes: int, n_ops: int = 1) -> float:
        """Seconds for one client to read ``n_bytes`` in ``n_ops`` requests."""
        if n_bytes < 0 or n_ops < 0:
            raise ConfigError("read sizes must be non-negative")
        self.bytes_served += n_bytes
        self.requests_served += n_ops
        return n_ops * self.latency_s + n_bytes / self.effective_bandwidth_bps()

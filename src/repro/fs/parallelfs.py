"""A striped parallel file system (Lustre-like).

The paper contrasts the "common practice of staging the executable onto the
NFS file system while having input data and output on a parallel file
system".  The parallel FS scales with clients up to the number of object
storage targets, making it the natural comparison point in the NFS
scalability experiment (DESIGN.md S3).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.faults.brownout import (
    place_degraded,
    reserve_degraded,
    window_triples,
)
from repro.fs.reservation import ReservationTimeline


class ParallelFileSystem:
    """Aggregate-bandwidth file system striped over ``n_targets`` servers."""

    def __init__(
        self,
        name: str = "pfs",
        aggregate_bandwidth_bps: float = 400e6,
        latency_s: float = 0.0005,
        n_targets: int = 16,
        iops_limit: float | None = 100_000.0,
    ) -> None:
        if aggregate_bandwidth_bps <= 0 or latency_s < 0 or n_targets < 1:
            raise ConfigError("invalid parallel FS parameters")
        if iops_limit is not None and iops_limit <= 0:
            raise ConfigError(f"IOPS limit must be positive, got {iops_limit}")
        self.name = name
        self.aggregate_bandwidth_bps = aggregate_bandwidth_bps
        self.latency_s = latency_s
        self.n_targets = n_targets
        #: Metadata/RPC processing rate (requests/second) across the
        #: whole file system for the timed queueing interface; ``None``
        #: lets RPCs pipeline without limit.
        self.iops_limit = iops_limit
        self.concurrent_clients = 1
        self.bytes_served = 0
        self.requests_served = 0
        #: Per-target disjoint, sorted (start, end) transfer windows for
        #: the timed queueing interface (:meth:`request_at`).
        self._target_reservations: list[ReservationTimeline] = [
            ReservationTimeline() for _ in range(n_targets)
        ]
        #: Windows during which the file system's RPC machinery is
        #: occupied (shared across targets — the metadata path is one
        #: service even on a striped store).
        self._op_reservations = ReservationTimeline()
        #: Declared brownout windows and the derived sorted
        #: capacity-multiplier triples (see :meth:`add_brownouts`).
        self._brownouts: set = set()
        self._bw_windows: tuple = ()
        self._op_windows: tuple = ()

    def set_concurrency(self, clients: int) -> None:
        """Declare how many nodes are reading simultaneously."""
        if clients < 1:
            raise ConfigError(f"client count must be >= 1, got {clients}")
        self.concurrent_clients = clients

    def effective_bandwidth_bps(self) -> float:
        """Per-client bandwidth: clients share targets, not one pipe.

        Until the client count exceeds the target count every client gets a
        full stripe's bandwidth; past that, clients share proportionally.
        """
        per_target = self.aggregate_bandwidth_bps / self.n_targets
        if self.concurrent_clients <= self.n_targets:
            return per_target
        return self.aggregate_bandwidth_bps / self.concurrent_clients

    def read_seconds(self, n_bytes: int, n_ops: int = 1) -> float:
        """Seconds for one client to read ``n_bytes`` in ``n_ops`` requests."""
        if n_bytes < 0 or n_ops < 0:
            raise ConfigError("read sizes must be non-negative")
        self.bytes_served += n_bytes
        self.requests_served += n_ops
        return n_ops * self.latency_s + n_bytes / self.effective_bandwidth_bps()

    # -- timed queueing interface (multi-rank engine) ---------------------
    def reset_queue(self) -> None:
        """Forget queued work (and brownouts) — call once per simulated job."""
        self._target_reservations = [
            ReservationTimeline() for _ in range(self.n_targets)
        ]
        self._op_reservations = ReservationTimeline()
        self._brownouts = set()
        self._bw_windows = ()
        self._op_windows = ()

    def add_brownouts(self, windows) -> None:
        """Declare degraded-capacity windows for the coming job.

        Same contract as :meth:`NFSServer.add_brownouts`: identical
        windows are idempotent, distinct overlapping windows raise
        :class:`ConfigError`, and :meth:`reset_queue` clears them.  A
        bandwidth brownout degrades every stripe (the failure mode is
        the shared interconnect or a controller, not one target).
        """
        for window in windows:
            if window in self._brownouts:
                continue
            for other in self._brownouts:
                if window.start_s < other.end_s and other.start_s < window.end_s:
                    raise ConfigError(
                        f"{self.name}: brownout window "
                        f"[{window.start_s}, {window.end_s}) overlaps "
                        f"[{other.start_s}, {other.end_s})"
                    )
            self._brownouts.add(window)
        self._bw_windows = window_triples(self._brownouts, "bandwidth_factor")
        self._op_windows = window_triples(self._brownouts, "iops_factor")

    def timeline_stats(self) -> tuple[int, int]:
        """``(stored_windows, total_bookings)`` over the queue timelines."""
        windows = len(self._op_reservations)
        bookings = self._op_reservations.bookings
        for timeline in self._target_reservations:
            windows += len(timeline)
            bookings += timeline.bookings
        return windows, bookings

    def request_at(self, start_s: float, n_bytes: int, n_ops: int = 1) -> float:
        """A read arriving at ``start_s``; returns its completion time.

        Protocol latency pipelines up to the ``iops_limit`` RPC rate
        (small-read storms queue at the metadata/RPC path even on a
        striped store); the transfer books the earliest free window on
        whichever storage target can start it soonest, at one stripe's
        bandwidth.  Up to ``n_targets`` clients proceed without
        queueing — the striped scalability the paper contrasts with NFS.
        """
        if n_bytes < 0 or n_ops < 0:
            raise ConfigError("read sizes must be non-negative")
        if start_s < 0:
            raise ConfigError(f"negative request time: {start_s}")
        self.bytes_served += n_bytes
        self.requests_served += n_ops
        per_target = self.aggregate_bandwidth_bps / self.n_targets
        if self._op_windows and self.iops_limit is not None and n_ops > 0:
            op_begin, _ = reserve_degraded(
                self._op_reservations,
                start_s,
                n_ops / self.iops_limit,
                self._op_windows,
            )
            queue_delay = op_begin - start_s
        else:
            queue_delay = self._op_reservations.reserve_ops(
                start_s, n_ops, self.iops_limit
            )
        arrival = start_s + queue_delay + n_ops * self.latency_s
        service = n_bytes / per_target
        if service <= 0.0:
            return arrival
        if self._bw_windows:
            spans = [
                place_degraded(timeline, arrival, service, self._bw_windows)
                for timeline in self._target_reservations
            ]
            target = min(range(self.n_targets), key=lambda i: spans[i][0])
            begin, end = spans[target]
            self._target_reservations[target].book(begin, end - begin)
            return end
        begins = [
            timeline.earliest_gap(arrival, service)
            for timeline in self._target_reservations
        ]
        target = min(range(self.n_targets), key=begins.__getitem__)
        begin = begins[target]
        self._target_reservations[target].book(begin, service)
        return begin + service

"""DLL staging strategies for extreme-scale jobs.

Section II.B.2: "an NFS file system could not support the level of
parallel accesses without OS extensions such as **collective opening of
DLLs**"; the conclusion proposes using Pynamic to "determine the
scalability of this current practice".  Three strategies are modelled:

- **independent**: every node reads every DLL from NFS (current practice),
- **collective**: one node reads each DLL once from NFS, then the set is
  fanned out over the interconnect with a binomial-tree broadcast (the
  proposed OS extension),
- **parallel_fs**: stage the DLLs on a striped parallel file system.

These closed forms are the *analytic twins* of the stepped distribution
overlay (:mod:`repro.dist`): ``INDEPENDENT`` corresponds to a flat
NFS-sourced overlay, ``COLLECTIVE`` to the store-and-forward binomial
broadcast, ``PARALLEL_FS`` to a flat PFS-sourced overlay.  On a
homogeneous cold cluster the stepped overlay's staging makespan matches
:func:`staging_seconds` (the golden tests pin ``COLLECTIVE`` within 5%);
the overlay additionally expresses what no closed form can — emergent
per-link queueing, straggling relays, partial warm mixes, and the
per-(node, image) availability times a running job's reads block on.
"""

from __future__ import annotations

import enum
import math

from repro.errors import ConfigError
from repro.fs.nfs import NFSServer
from repro.fs.parallelfs import ParallelFileSystem
from repro.mpi.network import NetworkModel


class StagingStrategy(enum.Enum):
    """How a job's nodes get the DLL set into their page caches."""

    INDEPENDENT = "independent"
    COLLECTIVE = "collective"
    PARALLEL_FS = "parallel_fs"


def staging_seconds(
    total_bytes: int,
    n_files: int,
    n_nodes: int,
    strategy: StagingStrategy,
    nfs: NFSServer | None = None,
    pfs: ParallelFileSystem | None = None,
    network: NetworkModel | None = None,
) -> float:
    """Seconds until *every* node holds the full DLL set, cold caches."""
    if total_bytes < 0 or n_files < 1 or n_nodes < 1:
        raise ConfigError("invalid staging parameters")
    nfs = nfs or NFSServer()
    pfs = pfs or ParallelFileSystem()
    network = network or NetworkModel()
    if strategy is StagingStrategy.INDEPENDENT:
        nfs.set_concurrency(n_nodes)
        try:
            return nfs.read_seconds(total_bytes, n_ops=n_files)
        finally:
            nfs.set_concurrency(1)
    if strategy is StagingStrategy.COLLECTIVE:
        nfs.set_concurrency(1)
        read = nfs.read_seconds(total_bytes, n_ops=n_files)
        rounds = math.ceil(math.log2(n_nodes)) if n_nodes > 1 else 0
        fanout = rounds * (
            network.latency_s * n_files
            + total_bytes / network.bandwidth_bps
        )
        return read + fanout
    if strategy is StagingStrategy.PARALLEL_FS:
        pfs.set_concurrency(n_nodes)
        try:
            return pfs.read_seconds(total_bytes, n_ops=n_files)
        finally:
            pfs.set_concurrency(1)
    raise ConfigError(f"unknown strategy {strategy!r}")  # pragma: no cover


def compare_strategies(
    total_bytes: int, n_files: int, node_counts: list[int]
) -> dict[StagingStrategy, dict[int, float]]:
    """Staging time per strategy per node count (fresh servers each run)."""
    results: dict[StagingStrategy, dict[int, float]] = {}
    for strategy in StagingStrategy:
        per_nodes: dict[int, float] = {}
        for nodes in node_counts:
            per_nodes[nodes] = staging_seconds(
                total_bytes, n_files, nodes, strategy
            )
        results[strategy] = per_nodes
    return results

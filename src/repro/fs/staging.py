"""DLL staging strategies for extreme-scale jobs.

Section II.B.2: "an NFS file system could not support the level of
parallel accesses without OS extensions such as **collective opening of
DLLs**"; the conclusion proposes using Pynamic to "determine the
scalability of this current practice".  Three strategies are modelled:

- **independent**: every node reads every DLL from NFS (current practice),
- **collective**: one node reads each DLL once from NFS, then the set is
  fanned out over the interconnect with a binomial-tree broadcast (the
  proposed OS extension),
- **parallel_fs**: stage the DLLs on a striped parallel file system,
- **pipelined**: the collective's cut-through refinement — the root
  relays each image in ``chunk_bytes``-sized chunks the moment it lands,
  so a relay forwards chunk *i* while receiving chunk *i+1* and the tree
  fills like a pipeline instead of draining level by level.

These closed forms are the *analytic twins* of the stepped distribution
overlay (:mod:`repro.dist`): ``INDEPENDENT`` corresponds to a flat
NFS-sourced overlay, ``COLLECTIVE`` to the store-and-forward binomial
broadcast, ``PARALLEL_FS`` to a flat PFS-sourced overlay, and
``PIPELINED`` to ``DistributionSpec(pipelined=True, chunk_bytes=...)``
on either tree topology.  On a homogeneous cold cluster the stepped
overlay's staging makespan matches :func:`staging_seconds` (the golden
tests pin ``COLLECTIVE`` and ``PIPELINED`` within 5%); the overlay
additionally expresses what no closed form can — emergent per-link
queueing, straggling relays, partial warm mixes (cache-aware relays),
and the per-(node, image) availability times a job's reads block on.
"""

from __future__ import annotations

import enum
import math

from repro.dist.topology import Topology, root_fanout, tree_depth
from repro.errors import ConfigError
from repro.fs.nfs import NFSServer
from repro.fs.parallelfs import ParallelFileSystem
from repro.mpi.network import NetworkModel


class StagingStrategy(enum.Enum):
    """How a job's nodes get the DLL set into their page caches."""

    INDEPENDENT = "independent"
    COLLECTIVE = "collective"
    PARALLEL_FS = "parallel_fs"
    PIPELINED = "pipelined"


def pipelined_staging_seconds(
    total_bytes: int,
    n_files: int,
    n_nodes: int,
    nfs: NFSServer | None = None,
    network: NetworkModel | None = None,
    topology: Topology = Topology.BINOMIAL,
    fanout: int = 2,
    chunk_bytes: "int | None" = None,
) -> float:
    """Closed form of the chunked cut-through broadcast's makespan.

    The root reads each image once from NFS and streams it to its ``K``
    children in ``C = ceil(size / chunk)`` chunks; every relay forwards a
    chunk the moment it lands.  Two regimes bound the root's last send:
    *egress-bound* (the NIC drains slower than NFS produces — the first
    image's landing plus the whole egress backlog) and *read-bound* (NFS
    is the bottleneck — the full serial read plus the last image's
    fan-out).  Below the root the tree fills like a pipeline: a k-ary
    tree adds ``(depth - 1)`` per-level chunk slots of ``K`` sends each,
    while the binomial tree's fan-out shrinks one child per level, which
    exactly absorbs the fill — its pipeline latency is hidden inside the
    root's own drain.  Chunks only granulate the interconnect; the NFS
    pass stays one batched request per image, so the root's request
    count never exceeds the image count.
    """
    if total_bytes < 0 or n_files < 1 or n_nodes < 1:
        raise ConfigError("invalid staging parameters")
    if chunk_bytes is not None and chunk_bytes <= 0:
        raise ConfigError(f"chunk_bytes must be positive, got {chunk_bytes}")
    nfs = nfs or NFSServer()
    network = network or NetworkModel()
    if topology is Topology.FLAT:
        # Nothing to relay: flat pipelined staging is independent reads.
        return staging_seconds(
            total_bytes, n_files, n_nodes, StagingStrategy.INDEPENDENT, nfs=nfs
        )
    nfs.set_concurrency(1)
    read_all = nfs.read_seconds(total_bytes, n_ops=n_files)
    if n_nodes == 1:
        return read_all
    file_bytes = total_bytes / n_files
    chunk = file_bytes if chunk_bytes is None else min(chunk_bytes, file_bytes)
    chunks_per_file = max(1, math.ceil(file_bytes / chunk)) if chunk > 0 else 1
    children = root_fanout(topology, n_nodes, fanout)
    depth = tree_depth(topology, n_nodes, fanout)
    chunk_slot = network.latency_s + chunk / network.bandwidth_bps
    per_child_file = (
        chunks_per_file * network.latency_s
        + file_bytes / network.bandwidth_bps
    )
    read_first = nfs.latency_s + file_bytes / nfs.bandwidth_bps
    egress_bound = read_first + children * n_files * per_child_file
    read_bound = read_all + children * per_child_file
    makespan = max(egress_bound, read_bound)
    if topology is Topology.KARY:
        makespan += (depth - 1) * children * chunk_slot
    return makespan


def staging_seconds(
    total_bytes: int,
    n_files: int,
    n_nodes: int,
    strategy: StagingStrategy,
    nfs: NFSServer | None = None,
    pfs: ParallelFileSystem | None = None,
    network: NetworkModel | None = None,
    topology: Topology = Topology.BINOMIAL,
    fanout: int = 2,
    chunk_bytes: "int | None" = None,
) -> float:
    """Seconds until *every* node holds the full DLL set, cold caches.

    ``topology``/``fanout``/``chunk_bytes`` parameterize the
    ``PIPELINED`` strategy only (the cut-through broadcast's tree shape
    and relay granularity); the other strategies ignore them.
    """
    if total_bytes < 0 or n_files < 1 or n_nodes < 1:
        raise ConfigError("invalid staging parameters")
    nfs = nfs or NFSServer()
    pfs = pfs or ParallelFileSystem()
    network = network or NetworkModel()
    if strategy is StagingStrategy.PIPELINED:
        return pipelined_staging_seconds(
            total_bytes,
            n_files,
            n_nodes,
            nfs=nfs,
            network=network,
            topology=topology,
            fanout=fanout,
            chunk_bytes=chunk_bytes,
        )
    if strategy is StagingStrategy.INDEPENDENT:
        nfs.set_concurrency(n_nodes)
        try:
            return nfs.read_seconds(total_bytes, n_ops=n_files)
        finally:
            nfs.set_concurrency(1)
    if strategy is StagingStrategy.COLLECTIVE:
        nfs.set_concurrency(1)
        read = nfs.read_seconds(total_bytes, n_ops=n_files)
        rounds = math.ceil(math.log2(n_nodes)) if n_nodes > 1 else 0
        fanout = rounds * (
            network.latency_s * n_files
            + total_bytes / network.bandwidth_bps
        )
        return read + fanout
    if strategy is StagingStrategy.PARALLEL_FS:
        pfs.set_concurrency(n_nodes)
        try:
            return pfs.read_seconds(total_bytes, n_ops=n_files)
        finally:
            pfs.set_concurrency(1)
    raise ConfigError(f"unknown strategy {strategy!r}")  # pragma: no cover


def compare_strategies(
    total_bytes: int, n_files: int, node_counts: list[int]
) -> dict[StagingStrategy, dict[int, float]]:
    """Staging time per strategy per node count (fresh servers each run)."""
    results: dict[StagingStrategy, dict[int, float]] = {}
    for strategy in StagingStrategy:
        per_nodes: dict[int, float] = {}
        for nodes in node_counts:
            per_nodes[nodes] = staging_seconds(
                total_bytes, n_files, nodes, strategy
            )
        results[strategy] = per_nodes
    return results
